//! Protocol fuzz battery for the serve wire codec — v1 *and* v2.
//!
//! Arbitrary byte soup, truncated prefixes of valid encodings, single-byte
//! mutations and hostile frame headers are all fed through
//! [`Request::decode`], [`Response::decode`], [`read_frame`] and the v2
//! header codecs; the codec must never panic, must always answer with a
//! typed [`distserve::ProtocolError`], and must round-trip every valid
//! frame bit-for-bit. A second battery drives a *live* daemon with hostile
//! first frames (mutated handshakes), unknown graph ids, colliding request
//! ids and interleaved pipelined frames — the daemon must answer typed,
//! never panic, and keep serving fresh connections afterwards. Mirrors the
//! corruption-battery style of `crates/store/tests/snapshot_corruption.rs`.

use distserve::hist::LatencyHistogram;
use distserve::wire::{
    decode_v2_request, decode_v2_response, encode_v2_request, encode_v2_response, read_frame,
    write_frame, GraphInfo, LookupOutcome, MetricsReport, RejectCode, Request, Response,
    MAX_FRAME_LEN,
};
use distserve::{ProtocolError, WireError};
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary raw payload bytes (possibly empty, possibly huge counts).
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..160)
}

/// Hand-rolled request strategy: the compat proptest has no `prop_oneof`,
/// so a variant selector integer is elaborated with the test RNG.
#[derive(Debug, Clone)]
struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Request {
        use rand::Rng;
        match rng.gen_range(0..9usize) {
            8 => Request::Hello {
                version: rng.gen_range(0..u32::MAX),
            },
            0 => Request::Lookup {
                stable: rng.gen_range(0..u64::MAX),
            },
            1 => {
                let deletes = rng.gen_range(0..5usize);
                let inserts = rng.gen_range(0..5usize);
                Request::Submit {
                    delete: (0..deletes).map(|_| rng.gen_range(0..u64::MAX)).collect(),
                    insert: (0..inserts)
                        .map(|_| (rng.gen_range(0..u32::MAX), rng.gen_range(0..u32::MAX)))
                        .collect(),
                }
            }
            2 => Request::Metrics,
            3 => Request::Palette,
            4 => Request::ShardInfo {
                shards: rng.gen_range(0..u32::MAX),
            },
            5 => {
                let len = rng.gen_range(0..24usize);
                let path: String = (0..len)
                    .map(|_| char::from(rng.gen_range(32u8..127)))
                    .collect();
                Request::Swap { path }
            }
            6 => Request::Flush,
            _ => Request::Shutdown,
        }
    }
}

/// Hand-rolled response strategy covering every opcode and outcome shape.
#[derive(Debug, Clone)]
struct ArbResponse;

impl Strategy for ArbResponse {
    type Value = Response;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Response {
        use rand::Rng;
        let detail: String = {
            let len = rng.gen_range(0..24usize);
            (0..len)
                .map(|_| char::from(rng.gen_range(32u8..127)))
                .collect()
        };
        match rng.gen_range(0..13usize) {
            12 => {
                let graphs = (0..rng.gen_range(0..4usize))
                    .map(|id| GraphInfo {
                        id: id as u32,
                        name: detail.clone(),
                        n: rng.gen_range(0..u64::MAX),
                        m: rng.gen_range(0..u64::MAX),
                    })
                    .collect();
                Response::Welcome {
                    version: rng.gen_range(0..u32::MAX),
                    max_inflight: rng.gen_range(0..u32::MAX),
                    graphs,
                }
            }
            0 => {
                let outcome = match rng.gen_range(0..3usize) {
                    0 => LookupOutcome::Unknown,
                    1 => LookupOutcome::Colored {
                        color: rng.gen_range(0..u64::MAX),
                        u: rng.gen_range(0..u64::MAX),
                        v: rng.gen_range(0..u64::MAX),
                    },
                    _ => LookupOutcome::Uncolored {
                        u: rng.gen_range(0..u64::MAX),
                        v: rng.gen_range(0..u64::MAX),
                    },
                };
                Response::Color {
                    epoch: rng.gen_range(0..u64::MAX),
                    version: rng.gen_range(0..u64::MAX),
                    outcome,
                }
            }
            1 => Response::Submitted {
                ticket: rng.gen_range(0..u64::MAX),
                queued: rng.gen_range(0..u32::MAX),
            },
            2 => {
                let code = match rng.gen_range(0..6usize) {
                    0 => RejectCode::QueueFull,
                    1 => RejectCode::UnknownEdge,
                    2 => RejectCode::DuplicateEdge,
                    3 => RejectCode::NodeOutOfRange,
                    4 => RejectCode::SelfLoop,
                    _ => RejectCode::SwapInProgress,
                };
                Response::Rejected { code, detail }
            }
            3 => {
                fn arb_hist(rng: &mut proptest::test_runner::TestRng) -> LatencyHistogram {
                    use rand::Rng;
                    let mut h = LatencyHistogram::default();
                    for _ in 0..rng.gen_range(0..12usize) {
                        h.record_us(rng.gen_range(0..u64::MAX >> 20));
                    }
                    h
                }
                let m = MetricsReport {
                    epoch: rng.gen_range(0..u64::MAX),
                    lookups: rng.gen_range(0..u64::MAX),
                    repaired_edges: rng.gen_range(0..u64::MAX),
                    repair: arb_hist(rng),
                    lookup: arb_hist(rng),
                    ..MetricsReport::default()
                };
                Response::Metrics(Box::new(m))
            }
            4 => Response::Palette {
                epoch: rng.gen_range(0..u64::MAX),
                palette: rng.gen_range(0..u64::MAX),
                max_degree: rng.gen_range(0..u64::MAX),
                colors_used: rng.gen_range(0..u64::MAX),
            },
            5 => Response::Shards {
                shards: rng.gen_range(0..u32::MAX),
                cut_edges: rng.gen_range(0..u64::MAX),
                cut_fraction: rng.gen_range(0.0..1.0),
                balance_factor: rng.gen_range(0.0..64.0),
            },
            6 => Response::Swapped {
                epoch: rng.gen_range(0..u64::MAX),
                n: rng.gen_range(0..u64::MAX),
                m: rng.gen_range(0..u64::MAX),
            },
            7 => Response::SwapRejected { detail },
            8 => Response::Flushed {
                epoch: rng.gen_range(0..u64::MAX),
                version: rng.gen_range(0..u64::MAX),
                ticks: rng.gen_range(0..u64::MAX),
            },
            9 => Response::ShuttingDown,
            10 => Response::ServerError { detail },
            _ => Response::ProtocolRejected { detail },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload bytes: the decoders must return `Ok` or a typed
    /// error — never panic, never allocate unbounded buffers.
    #[test]
    fn arbitrary_payloads_never_panic(bytes in arb_bytes()) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Every valid request encoding decodes back to itself.
    #[test]
    fn requests_round_trip(req in ArbRequest) {
        let encoded = req.encode();
        prop_assert_eq!(Request::decode(&encoded), Ok(req));
    }

    /// Every valid response encoding decodes back to itself (bit-exact,
    /// including the f64 fields carried as `to_bits`).
    #[test]
    fn responses_round_trip(resp in ArbResponse) {
        let encoded = resp.encode();
        prop_assert_eq!(Response::decode(&encoded), Ok(resp));
    }

    /// Every strict prefix of a valid encoding is an error, not a panic and
    /// not a silent partial decode: the payload grammar has no valid
    /// strict prefixes because `finish` demands full consumption.
    #[test]
    fn truncated_requests_yield_typed_errors(req in ArbRequest, cut in 0usize..4096) {
        let encoded = req.encode();
        let cut = cut % encoded.len(); // encode() is never empty (opcode byte)
        prop_assert!(Request::decode(&encoded[..cut]).is_err());
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_yield_typed_errors(resp in ArbResponse, cut in 0usize..4096) {
        let encoded = resp.encode();
        let cut = cut % encoded.len();
        prop_assert!(Response::decode(&encoded[..cut]).is_err());
    }

    /// Single-byte mutations of a valid encoding never panic the decoder;
    /// they either still decode (the flip landed in a value) or fail typed.
    #[test]
    fn mutated_requests_never_panic(req in ArbRequest, pos in 0usize..4096, flip in 1u8..=255) {
        let mut encoded = req.encode();
        let pos = pos % encoded.len();
        encoded[pos] ^= flip;
        let _ = Request::decode(&encoded);
        let _ = Response::decode(&encoded);
    }

    /// Appending trailing garbage to a valid encoding is always rejected
    /// (`TrailingBytes`), keeping framing honest.
    #[test]
    fn trailing_bytes_are_rejected(req in ArbRequest, extra in 1usize..16) {
        let mut encoded = req.encode();
        encoded.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(
            Request::decode(&encoded),
            Err(ProtocolError::TrailingBytes { extra })
        );
    }

    /// Frame streams assembled from valid frames read back in order; the
    /// reader then reports a clean end-of-stream.
    #[test]
    fn frame_streams_round_trip(reqs in proptest::collection::vec(ArbRequest, 1..6)) {
        let mut stream = Vec::new();
        for req in &reqs {
            write_frame(&mut stream, &req.encode()).expect("valid frames write");
        }
        let mut cursor = Cursor::new(stream);
        for req in &reqs {
            let payload = read_frame(&mut cursor)
                .expect("frame reads")
                .expect("frame present");
            let decoded = Request::decode(&payload);
            prop_assert_eq!(decoded.as_ref(), Ok(req));
        }
        prop_assert!(matches!(read_frame(&mut cursor), Ok(None)));
    }

    /// Arbitrary bytes fed to the frame reader never panic: they surface as
    /// frames (whose payloads then decode or fail typed), framing errors,
    /// or clean EOF — and the reader never over-allocates on hostile
    /// length declarations.
    #[test]
    fn arbitrary_streams_never_panic_the_reader(bytes in arb_bytes()) {
        let mut cursor = Cursor::new(bytes);
        loop {
            match read_frame(&mut cursor) {
                Ok(Some(payload)) => {
                    let _ = Request::decode(&payload);
                }
                Ok(None) => break,
                Err(WireError::Protocol(_)) => break, // typed: desync, stop
                Err(WireError::Io(_)) => break,       // truncated mid-frame
            }
        }
    }

    /// A frame header declaring a hostile length (zero or beyond the cap)
    /// is rejected before any payload allocation happens.
    #[test]
    fn hostile_lengths_are_rejected(extra in 0u32..1024) {
        let oversize = (MAX_FRAME_LEN as u32).saturating_add(extra + 1);
        let mut stream = oversize.to_le_bytes().to_vec();
        stream.extend_from_slice(&[0u8; 8]);
        match read_frame(&mut Cursor::new(stream)) {
            Err(WireError::Protocol(ProtocolError::FrameTooLarge { len })) => {
                prop_assert_eq!(len, oversize as usize);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other.map(|_| ())),
        }
        let zero = 0u32.to_le_bytes().to_vec();
        match read_frame(&mut Cursor::new(zero)) {
            Err(WireError::Protocol(ProtocolError::EmptyFrame)) => {}
            other => prop_assert!(false, "expected EmptyFrame, got {:?}", other.map(|_| ())),
        }
    }
}

/// A frame that ends mid-payload is `Truncated` — distinguishable from the
/// clean between-frames EOF (`Ok(None)`).
#[test]
fn eof_inside_a_frame_is_truncated() {
    let payload = Request::Metrics.encode();
    let mut stream = Vec::new();
    write_frame(&mut stream, &payload).unwrap();
    stream.truncate(stream.len() - 1);
    match read_frame(&mut Cursor::new(stream)) {
        Err(WireError::Protocol(ProtocolError::Truncated { expected, have })) => {
            assert_eq!(expected, payload.len());
            assert_eq!(have, payload.len() - 1);
        }
        other => panic!("expected Truncated, got {:?}", other.map(|_| ())),
    }
}

/// Unknown opcodes and tags surface as their own typed errors with the
/// offending byte, not as generic failures.
#[test]
fn unknown_opcodes_and_tags_are_typed() {
    assert_eq!(
        Request::decode(&[0x7F]),
        Err(ProtocolError::UnknownOpcode(0x7F))
    );
    assert_eq!(
        Response::decode(&[0x01]),
        Err(ProtocolError::UnknownOpcode(0x01))
    );
    // 0x83 = Rejected; tag 99 is not a RejectCode.
    let bad_tag = vec![0x83, 99, 0, 0, 0, 0];
    match Response::decode(&bad_tag) {
        Err(ProtocolError::UnknownTag { field, tag }) => {
            assert_eq!(field, "reject code");
            assert_eq!(tag, 99);
        }
        other => panic!("expected UnknownTag, got {other:?}"),
    }
}

/// A declared element count far beyond the remaining bytes is refused
/// before allocation (`CountTooLarge`), so hostile counts cannot OOM.
#[test]
fn hostile_counts_are_refused_before_allocation() {
    // Submit opcode + delete count u32::MAX with no element bytes.
    let mut payload = vec![0x02];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    match Request::decode(&payload) {
        Err(ProtocolError::CountTooLarge { declared, .. }) => {
            assert_eq!(declared, u32::MAX as usize);
        }
        other => panic!("expected CountTooLarge, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// v2 codec properties: the routing headers obey the same contract as the
// bodies — bit-exact round trips, typed errors on truncation, no panics on
// mutation.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// v2 request frames round-trip with the request id and graph id intact.
    #[test]
    fn v2_requests_round_trip(req in ArbRequest, rid in 0u64..u64::MAX, gid in 0u32..u32::MAX) {
        let encoded = encode_v2_request(rid, gid, &req);
        prop_assert_eq!(decode_v2_request(&encoded), Ok((rid, gid, req)));
    }

    /// v2 response frames round-trip with the request id intact.
    #[test]
    fn v2_responses_round_trip(resp in ArbResponse, rid in 0u64..u64::MAX) {
        let encoded = encode_v2_response(rid, &resp);
        prop_assert_eq!(decode_v2_response(&encoded), Ok((rid, resp)));
    }

    /// Every strict prefix of a v2 frame is a typed error — whether the cut
    /// lands inside the routing header or inside the body.
    #[test]
    fn truncated_v2_frames_yield_typed_errors(req in ArbRequest, cut in 0usize..4096) {
        let encoded = encode_v2_request(7, 0, &req);
        let cut = cut % encoded.len();
        prop_assert!(decode_v2_request(&encoded[..cut]).is_err());
    }

    /// Single-byte mutations of v2 frames never panic either decoder.
    #[test]
    fn mutated_v2_frames_never_panic(req in ArbRequest, pos in 0usize..4096, flip in 1u8..=255) {
        let mut encoded = encode_v2_request(7, 0, &req);
        let pos = pos % encoded.len();
        encoded[pos] ^= flip;
        let _ = decode_v2_request(&encoded);
        let _ = decode_v2_response(&encoded);
    }
}

// ---------------------------------------------------------------------------
// Live-daemon hostile battery: mutated handshakes, unknown graph ids,
// request-id collisions and interleaved pipelined frames against a real
// listener. The daemon must answer typed, never panic, and keep serving
// fresh connections afterwards.
// ---------------------------------------------------------------------------

mod live {
    use super::*;
    use distgraph::generators;
    use distserve::{ClientBuilder, DaemonHandle, ServeConfig, ServerCore, Tenant};
    use std::net::TcpStream;
    use std::time::Duration;

    fn two_tenant_daemon() -> DaemonHandle {
        let cfg = ServeConfig::default();
        let a = Tenant::new("alpha", generators::grid_torus(5, 5), cfg.clone()).unwrap();
        let b = Tenant::new("beta", generators::grid_torus(4, 4), cfg).unwrap();
        DaemonHandle::spawn(ServerCore::from_tenants(vec![a, b])).unwrap()
    }

    fn open(daemon: &DaemonHandle) -> TcpStream {
        let stream = TcpStream::connect(daemon.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
    }

    /// Opens a raw v2 connection: headerless Hello out, headerless Welcome
    /// back.
    fn open_v2(daemon: &DaemonHandle) -> TcpStream {
        let mut stream = open(daemon);
        write_frame(
            &mut stream,
            &Request::Hello {
                version: distserve::PROTOCOL_VERSION,
            }
            .encode(),
        )
        .unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        match Response::decode(&payload) {
            Ok(Response::Welcome { version, .. }) => assert_eq!(version, 2),
            other => panic!("expected Welcome, got {other:?}"),
        }
        stream
    }

    /// The daemon answers something typed to every fresh connection — used
    /// after each hostile exchange to prove the listener survived.
    fn daemon_still_serves(daemon: &DaemonHandle) {
        let mut v1 = ClientBuilder::new()
            .connect_v1(daemon.addr())
            .expect("v1 connect after hostile exchange");
        v1.metrics().expect("v1 metrics after hostile exchange");
        let mut v2 = ClientBuilder::new()
            .connect(daemon.addr())
            .expect("v2 connect after hostile exchange");
        v2.metrics().expect("v2 metrics after hostile exchange");
    }

    /// Every single-byte mutation of a valid Hello first frame gets *some*
    /// deterministic treatment — a typed reject, v1 fallback semantics, or
    /// a clean close — and the daemon keeps serving afterwards.
    #[test]
    fn mutated_handshakes_never_kill_the_daemon() {
        let daemon = two_tenant_daemon();
        let hello = Request::Hello { version: 2 }.encode();
        for pos in 0..hello.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut frame = hello.clone();
                frame[pos] ^= flip;
                let mut stream = open(&daemon);
                write_frame(&mut stream, &frame).unwrap();
                // The answer is one of: Welcome (flip landed in a dead bit),
                // ProtocolRejected (bad version / opcode), a v1 answer (the
                // opcode mutated into another valid request), or clean EOF.
                // All that matters: no hang, no panic, typed decode.
                if let Ok(Some(payload)) = read_frame(&mut stream) {
                    let _ = Response::decode(&payload);
                }
                drop(stream);
            }
        }
        daemon_still_serves(&daemon);
        daemon.shutdown();
    }

    /// A graph id beyond the catalog is a typed `UnknownGraph` reject that
    /// echoes the request id and charges no tenant's counters.
    #[test]
    fn unknown_graph_ids_are_typed_rejects() {
        let daemon = two_tenant_daemon();
        let mut stream = open_v2(&daemon);
        write_frame(
            &mut stream,
            &encode_v2_request(99, 7, &Request::Lookup { stable: 0 }),
        )
        .unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let (rid, resp) = decode_v2_response(&payload).unwrap();
        assert_eq!(rid, 99);
        match resp {
            Response::Rejected {
                code: RejectCode::UnknownGraph,
                detail,
            } => assert!(detail.contains('7'), "detail names the bad id: {detail}"),
            other => panic!("expected UnknownGraph, got {other:?}"),
        }
        // Routing faults are connection-level: neither tenant was charged.
        for tenant in daemon.core().tenants() {
            assert_eq!(tenant.metrics(0).rejected, 0);
        }
        daemon_still_serves(&daemon);
        daemon.shutdown();
    }

    /// Request ids are opaque to the daemon: colliding ids are answered
    /// once per frame, all echoing the same id.
    #[test]
    fn request_id_collisions_are_answered_per_frame() {
        let daemon = two_tenant_daemon();
        let mut stream = open_v2(&daemon);
        for _ in 0..3 {
            write_frame(
                &mut stream,
                &encode_v2_request(5, 0, &Request::Lookup { stable: 1 }),
            )
            .unwrap();
        }
        for _ in 0..3 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (rid, resp) = decode_v2_response(&payload).unwrap();
            assert_eq!(rid, 5);
            assert!(matches!(resp, Response::Color { .. }), "got {resp:?}");
        }
        daemon.shutdown();
    }

    /// Interleaved frames for both graphs on one pipelined connection all
    /// complete, each answer tagged with its originating request id.
    #[test]
    fn interleaved_pipelined_frames_all_complete() {
        let daemon = two_tenant_daemon();
        let mut stream = open_v2(&daemon);
        let total = 10u64;
        for rid in 0..total {
            let gid = (rid % 2) as u32;
            write_frame(
                &mut stream,
                &encode_v2_request(rid, gid, &Request::Lookup { stable: rid }),
            )
            .unwrap();
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..total {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (rid, resp) = decode_v2_response(&payload).unwrap();
            assert!(matches!(resp, Response::Color { .. }), "got {resp:?}");
            assert!(seen.insert(rid), "request id {rid} answered twice");
        }
        assert_eq!(seen, (0..total).collect());
        daemon.shutdown();
    }

    /// A malformed body under a well-formed v2 header is rejected typed,
    /// echoing the header's request id, and the connection stays usable.
    #[test]
    fn malformed_v2_bodies_echo_their_request_id() {
        let daemon = two_tenant_daemon();
        let mut stream = open_v2(&daemon);
        // Header rid=42 gid=0, body = unknown opcode 0x7F.
        let mut frame = encode_v2_request(42, 0, &Request::Metrics);
        *frame.last_mut().unwrap() = 0x7F;
        write_frame(&mut stream, &frame).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let (rid, resp) = decode_v2_response(&payload).unwrap();
        assert_eq!(rid, 42);
        assert!(
            matches!(resp, Response::ProtocolRejected { .. }),
            "got {resp:?}"
        );
        // The connection survives the reject.
        write_frame(
            &mut stream,
            &encode_v2_request(43, 0, &Request::Lookup { stable: 0 }),
        )
        .unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let (rid, resp) = decode_v2_response(&payload).unwrap();
        assert_eq!(rid, 43);
        assert!(matches!(resp, Response::Color { .. }), "got {resp:?}");
        daemon.shutdown();
    }
}
