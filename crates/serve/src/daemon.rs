//! The TCP front door: accept loop, per-connection workers (v1
//! request-reply or v2 pipelined), per-tenant tick threads, cooperative
//! shutdown.
//!
//! # Protocol negotiation
//!
//! The **first frame** of a connection decides its generation. A
//! [`Request::Hello`] opens protocol v2: the daemon answers a headerless
//! [`Response::Welcome`] (the handshake itself carries no routing header)
//! and switches the connection to the pipelined v2 worker. Any other
//! first frame pins the connection to v1 semantics — strict
//! request-reply, no headers, every request routed to graph 0 — which is
//! byte-for-byte the PR-9 protocol.
//!
//! # Pipelined v2 connections
//!
//! A v2 connection runs one reader (the connection thread itself), one
//! executor thread per served graph, and one writer thread, joined by a
//! bounded response queue:
//!
//! ```text
//! reader ──(graph 0 queue)── executor 0 ──┐
//!        ──(graph 1 queue)── executor 1 ──┼──(bounded)── writer
//!        ──(inline: Hello/unknown-graph/rejects)──┘
//! ```
//!
//! Per-graph queues preserve **per-graph FIFO** (admission order equals
//! application order within a tenant, which the replay audit relies on)
//! while letting responses from different graphs complete **out of
//! order** — a slow repair tick on graph 0 never delays a lookup answer
//! on graph 1. Every response carries the originating `request_id`, so
//! clients re-associate answers however they arrive.
//!
//! Backpressure is structural, not advisory: the reader blocks once
//! `max_inflight` requests are unanswered, which stops it draining the
//! socket and pushes back on the peer through TCP flow control; the
//! response queue is bounded by the same cap, so a stalled peer can never
//! balloon daemon memory. After a write error the writer keeps *draining*
//! the queue without writing, so executors finishing late work never
//! block on a dead socket.
//!
//! # Transport policy (both generations)
//!
//! * **Payload-level** protocol errors (bad opcode, truncated body, …) keep
//!   the connection alive — framing is still in sync, so the worker answers
//!   [`Response::ProtocolRejected`] and keeps reading. On v2 the reject is
//!   tagged with the frame's `request_id` when the header was readable,
//!   else with id 0.
//! * **Framing-level** errors (oversize/zero length declaration, EOF inside
//!   a frame) desynchronize the stream: the worker answers once and closes.
//! * Shutdown never blocks on idle readers: the handle keeps a registry of
//!   connection streams and `TcpStream::shutdown`s them, which wakes every
//!   blocked `read` with EOF.

use crate::error::WireError;
use crate::state::ServerCore;
use crate::wire::{
    decode_v2_request_header, encode_v2_response, read_frame, write_frame, Request, Response,
};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running daemon: owns the listener thread, connection workers and the
/// per-tenant background tickers over one shared [`ServerCore`].
#[derive(Debug)]
pub struct DaemonHandle {
    core: Arc<ServerCore>,
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    tickers: Vec<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DaemonHandle {
    /// Binds `127.0.0.1:0` (an OS-assigned port) and starts serving `core`.
    /// One tick thread is spawned per tenant whose config asks for one, so
    /// a slow repair on one graph never delays another graph's ticks.
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures.
    pub fn spawn(core: ServerCore) -> io::Result<Self> {
        let core = Arc::new(core);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let core = Arc::clone(&core);
            let running = Arc::clone(&running);
            let conns = Arc::clone(&conns);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !running.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                    }
                    let core = Arc::clone(&core);
                    let running = Arc::clone(&running);
                    let conns = Arc::clone(&conns);
                    let worker = std::thread::spawn(move || {
                        serve_connection(&core, stream, &running, addr, &conns);
                    });
                    workers
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(worker);
                }
            })
        };

        let tickers = core
            .tenants()
            .iter()
            .enumerate()
            .filter_map(|(gid, tenant)| {
                tenant.config().tick_interval_ms.map(|interval| {
                    let core = Arc::clone(&core);
                    let running = Arc::clone(&running);
                    std::thread::spawn(move || {
                        while running.load(Ordering::SeqCst) {
                            core.tenants()[gid].tick();
                            std::thread::sleep(Duration::from_millis(interval));
                        }
                    })
                })
            })
            .collect();

        Ok(DaemonHandle {
            core,
            addr,
            running,
            conns,
            accept: Some(accept),
            tickers,
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving core — tests and the bench harness use this for
    /// in-process introspection (batch logs, state snapshots, manual ticks).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Stops accepting, wakes every blocked reader, and joins all daemon
    /// threads.
    pub fn shutdown(mut self) {
        stop(&self.running, self.addr, &self.conns);
        self.join_all();
    }

    /// Blocks until some client asks the daemon to stop (a `Shutdown`
    /// request), then joins all daemon threads. This is the standalone
    /// binary's serve loop.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept loop only exits after `stop` ran; finish the cleanup
        // (idempotent) and join the rest.
        stop(&self.running, self.addr, &self.conns);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.tickers.drain(..) {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        // Best-effort stop without joining (joining here could deadlock if
        // a worker drops the handle); `shutdown` is the clean path.
        stop(&self.running, self.addr, &self.conns);
    }
}

/// Flips the running flag, closes every registered connection (waking
/// blocked reads with EOF) and pokes the listener so `accept` returns.
fn stop(running: &AtomicBool, addr: SocketAddr, conns: &Mutex<Vec<TcpStream>>) {
    if !running.swap(false, Ordering::SeqCst) {
        return;
    }
    for conn in conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let _ = TcpStream::connect(addr);
}

/// Reads the first frame and dispatches the connection to the v2 pipelined
/// worker (first frame is a `Hello`) or the v1 request-reply worker
/// (anything else, including a malformed payload).
fn serve_connection(
    core: &ServerCore,
    stream: TcpStream,
    running: &AtomicBool,
    addr: SocketAddr,
    conns: &Mutex<Vec<TcpStream>>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let first = match read_frame(&mut reader) {
        Ok(None) => return,
        Ok(Some(payload)) => payload,
        Err(WireError::Protocol(e)) => {
            core.note_protocol_error();
            let reject = Response::ProtocolRejected {
                detail: e.to_string(),
            };
            let _ = write_frame(&mut writer, &reject.encode());
            return;
        }
        Err(WireError::Io(_)) => return,
    };
    match Request::decode(&first) {
        Ok(Request::Hello { version }) => {
            // The handshake is headerless in both directions; the routing
            // header starts with the first post-handshake frame.
            let answer = core.handle_on(0, &Request::Hello { version });
            let refused = !matches!(answer, Response::Welcome { .. });
            if refused {
                core.note_protocol_error();
            }
            if write_frame(&mut writer, &answer.encode()).is_err() || refused {
                return;
            }
            serve_v2(core, reader, writer, running, addr, conns);
        }
        first_result => serve_v1(core, reader, writer, running, addr, conns, first_result),
    }
}

/// The v1 request-reply loop (the PR-9 protocol): decode, handle against
/// graph 0, answer, repeat. `first` is the already-read first frame's
/// decode result.
fn serve_v1(
    core: &ServerCore,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    running: &AtomicBool,
    addr: SocketAddr,
    conns: &Mutex<Vec<TcpStream>>,
    first: Result<Request, crate::error::ProtocolError>,
) {
    let mut pending = Some(first);
    loop {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let decoded = match pending.take() {
            Some(d) => d,
            None => match read_frame(&mut reader) {
                Ok(None) => break,
                Ok(Some(payload)) => Request::decode(&payload),
                Err(WireError::Protocol(e)) => {
                    core.note_protocol_error();
                    let reject = Response::ProtocolRejected {
                        detail: e.to_string(),
                    };
                    let _ = write_frame(&mut writer, &reject.encode());
                    break;
                }
                Err(WireError::Io(_)) => break,
            },
        };
        match decoded {
            Ok(req) => {
                let resp = core.handle(&req);
                let stop_after = matches!(req, Request::Shutdown);
                if write_frame(&mut writer, &resp.encode()).is_err() {
                    break;
                }
                if stop_after {
                    stop(running, addr, conns);
                    break;
                }
            }
            Err(e) => {
                core.note_protocol_error();
                let reject = Response::ProtocolRejected {
                    detail: e.to_string(),
                };
                if write_frame(&mut writer, &reject.encode()).is_err() {
                    break;
                }
            }
        }
    }
}

/// Blocks until an in-flight slot is free, then takes one. Called only by
/// the reader — blocking here stops the socket drain, which is the
/// backpressure contract.
fn acquire_slot(slots: &(Mutex<usize>, Condvar), cap: usize) {
    let mut held = lock(&slots.0);
    while *held >= cap {
        held = slots.1.wait(held).unwrap_or_else(|e| e.into_inner());
    }
    *held += 1;
}

/// Returns an in-flight slot and wakes the reader if it was at the cap.
fn release_slot(slots: &(Mutex<usize>, Condvar)) {
    *lock(&slots.0) -= 1;
    slots.1.notify_one();
}

/// The pipelined v2 worker: reader (this thread) → per-graph executors →
/// bounded response queue → writer. See the module docs for the ordering
/// and backpressure contract.
fn serve_v2(
    core: &ServerCore,
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    running: &AtomicBool,
    addr: SocketAddr,
    conns: &Mutex<Vec<TcpStream>>,
) {
    let cap = core.default_tenant().config().max_inflight.max(1) as usize;
    let ntenants = core.tenants().len();
    let slots = (Mutex::new(0usize), Condvar::new());
    let (resp_tx, resp_rx) = mpsc::sync_channel::<Vec<u8>>(cap);
    let mut stop_after = false;

    std::thread::scope(|s| {
        s.spawn(move || {
            let mut w = writer;
            let mut broken = false;
            for payload in resp_rx {
                // After a write error, keep draining so executors finishing
                // late work never block sending into a queue nobody reads.
                if !broken && write_frame(&mut w, &payload).is_err() {
                    broken = true;
                }
            }
        });

        let mut work_txs: Vec<mpsc::Sender<(u64, Request)>> = Vec::with_capacity(ntenants);
        for gid in 0..ntenants {
            let (tx, rx) = mpsc::channel::<(u64, Request)>();
            work_txs.push(tx);
            let resp_tx = resp_tx.clone();
            let slots = &slots;
            s.spawn(move || {
                for (rid, req) in rx {
                    let resp = core.handle_on(gid as u32, &req);
                    let _ = resp_tx.send(encode_v2_response(rid, &resp));
                    release_slot(slots);
                }
            });
        }

        loop {
            if !running.load(Ordering::SeqCst) {
                break;
            }
            match read_frame(&mut reader) {
                Ok(None) => break,
                Ok(Some(payload)) => match decode_v2_request_header(&payload) {
                    Ok((rid, gid, body)) => match Request::decode(body) {
                        Ok(Request::Shutdown) => {
                            // Stop reading first; the daemon-wide stop runs
                            // after the scope joins, so the tagged answer is
                            // written before the socket closes.
                            let _ = resp_tx.send(encode_v2_response(rid, &Response::ShuttingDown));
                            stop_after = true;
                            break;
                        }
                        Ok(req)
                            if matches!(req, Request::Hello { .. }) || gid as usize >= ntenants =>
                        {
                            // Re-Hellos and unknown-graph routes have no
                            // tenant executor; answer inline, no slot taken.
                            let resp = core.handle_on(gid, &req);
                            let _ = resp_tx.send(encode_v2_response(rid, &resp));
                        }
                        Ok(req) => {
                            acquire_slot(&slots, cap);
                            let _ = work_txs[gid as usize].send((rid, req));
                        }
                        Err(e) => {
                            core.note_protocol_error();
                            let reject = Response::ProtocolRejected {
                                detail: e.to_string(),
                            };
                            let _ = resp_tx.send(encode_v2_response(rid, &reject));
                        }
                    },
                    Err(e) => {
                        // Frame shorter than the v2 header: framing is still
                        // in sync, answer with request id 0 and keep going.
                        core.note_protocol_error();
                        let reject = Response::ProtocolRejected {
                            detail: e.to_string(),
                        };
                        let _ = resp_tx.send(encode_v2_response(0, &reject));
                    }
                },
                Err(WireError::Protocol(e)) => {
                    core.note_protocol_error();
                    let reject = Response::ProtocolRejected {
                        detail: e.to_string(),
                    };
                    let _ = resp_tx.send(encode_v2_response(0, &reject));
                    break;
                }
                Err(WireError::Io(_)) => break,
            }
        }
        // Closing the work channels lets executors drain and exit; their
        // dropped response senders then close the queue and the writer
        // finishes. The scope joins everything.
        drop(work_txs);
        drop(resp_tx);
    });

    if stop_after {
        stop(running, addr, conns);
    }
}
