//! A minimal JSON writer **and parser** for the machine-readable benchmark
//! artifacts.
//!
//! The workspace's offline `serde` stand-in provides marker traits only (see
//! `crates/compat/README.md`), so the `BENCH_*.json` files are rendered by
//! this hand-rolled emitter instead. It covers exactly what the bench schema
//! needs: objects, arrays, strings (with escaping), integers, finite floats
//! and booleans. The parser ([`JsonValue::parse`]) reads the same dialect
//! back — the `bench-regression` CI job uses it to diff a fresh run against
//! the committed `BENCH_1.json` baseline (see [`crate::regression`]).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a fractional part).
    Int(i64),
    /// A float; non-finite values are rendered as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses a JSON document (any whitespace style, not just the one
    /// [`JsonValue::render`] emits). Numbers with a fractional part,
    /// exponent, or outside the `i64` range parse as [`JsonValue::Num`],
    /// everything else as [`JsonValue::Int`] — the same split the emitter
    /// writes. Trailing garbage after the document is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the first
    /// offending character.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(input, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value; `None` on non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (ints included); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Always include a decimal point so the field is
                    // unambiguously a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, b"null", JsonValue::Null),
        Some(b't') => parse_keyword(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(input, bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(input, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(input, bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(keyword) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(input, *pos + 1)
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        match code {
                            0xD800..=0xDBFF => {
                                // High surrogate: JSON encodes astral
                                // characters as a \uXXXX\uXXXX UTF-16 pair;
                                // a high surrogate not followed by a low one
                                // is malformed.
                                let pair_err = || {
                                    format!(
                                        "lone high surrogate \\u{code:04x} at byte {}",
                                        *pos - 4
                                    )
                                };
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(pair_err());
                                }
                                let low = parse_hex4(input, *pos + 3).ok_or_else(pair_err)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(pair_err());
                                }
                                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(scalar)
                                        .expect("a valid surrogate pair decodes to a scalar"),
                                );
                                *pos += 6;
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{code:04x} at byte {}",
                                    *pos - 4
                                ));
                            }
                            c => out.push(
                                char::from_u32(c).expect("non-surrogate BMP value is a scalar"),
                            ),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are safe to recover with char_indices).
                let rest = &input[*pos..];
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Parses exactly four ASCII hex digits at `input[at..at + 4]`.
///
/// The digit check matters: `u32::from_str_radix` accepts a leading `+`, so
/// without it `\u+123` would slip through as a "valid" escape.
fn parse_hex4(input: &str, at: usize) -> Option<u32> {
    let hex = input.get(at..at + 4)?;
    if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u32::from_str_radix(hex, 16).ok()
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = &input[start..*pos];
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !fractional {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(JsonValue::Int(i));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::Int(-7).render(), "-7\n");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::Num(3.0).render(), "3.0\n");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj(vec![
            ("id", JsonValue::str("E1")),
            (
                "rows",
                JsonValue::Arr(vec![
                    JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
                    JsonValue::Arr(vec![]),
                ]),
            ),
            ("empty", JsonValue::Obj(vec![])),
        ]);
        let rendered = v.render();
        assert!(rendered.contains("\"id\": \"E1\""));
        assert!(rendered.contains("\"rows\": ["));
        assert!(rendered.contains("\"empty\": {}"));
        // Valid bracket balance (cheap sanity check).
        let opens = rendered.matches(['[', '{']).count();
        let closes = rendered.matches([']', '}']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn parse_roundtrips_the_emitted_dialect() {
        let doc = JsonValue::obj(vec![
            ("schema", JsonValue::str("edgecolor-bench/v1")),
            ("count", JsonValue::Int(-42)),
            ("ratio", JsonValue::Num(0.125)),
            ("whole", JsonValue::Num(3.0)),
            ("flag", JsonValue::Bool(true)),
            ("missing", JsonValue::Null),
            (
                "rows",
                JsonValue::Arr(vec![
                    JsonValue::Arr(vec![JsonValue::str("a\"b\\c\nd"), JsonValue::Int(7)]),
                    JsonValue::Arr(vec![]),
                    JsonValue::Obj(vec![]),
                ]),
            ),
        ]);
        let parsed = JsonValue::parse(&doc.render()).expect("round-trip parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_handles_compact_and_weird_whitespace() {
        let parsed = JsonValue::parse("{\"a\":[1,2.5,null],\t\"b\":{\"c\":false}}").unwrap();
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[1],
            JsonValue::Num(2.5)
        );
        assert_eq!(
            parsed.get("b").unwrap().get("c"),
            Some(&JsonValue::Bool(false))
        );
        assert_eq!(parsed.get("zzz"), None);
        assert_eq!(JsonValue::parse("  7  ").unwrap(), JsonValue::Int(7));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(
            JsonValue::parse("\"\\u0041\"").unwrap(),
            JsonValue::str("A")
        );
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        // Regression: surrogate pairs used to collapse to U+FFFD because
        // each half was decoded in isolation.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::str("\u{1F600}")
        );
        assert_eq!(
            JsonValue::parse("\"\\uD834\\uDD1E\"").unwrap(),
            JsonValue::str("\u{1D11E}")
        );
        // Pair math edge cases: first and last astral code points.
        assert_eq!(
            JsonValue::parse("\"\\uD800\\uDC00\"").unwrap(),
            JsonValue::str("\u{10000}")
        );
        assert_eq!(
            JsonValue::parse("\"\\uDBFF\\uDFFF\"").unwrap(),
            JsonValue::str("\u{10FFFF}")
        );
        // Surrounding characters keep their positions.
        assert_eq!(
            JsonValue::parse("\"a\\ud83d\\ude00z\"").unwrap(),
            JsonValue::str("a\u{1F600}z")
        );
    }

    #[test]
    fn parse_rejects_lone_and_malformed_surrogates() {
        for bad in [
            "\"\\ud83d\"",        // lone high surrogate
            "\"\\ud83d!\"",       // high surrogate followed by a raw char
            "\"\\ud83d\\n\"",     // high surrogate followed by a non-\u escape
            "\"\\ud83d\\u0041\"", // high surrogate followed by a BMP escape
            "\"\\ud83d\\ud83d\"", // two high surrogates
            "\"\\ude00\"",        // lone low surrogate
            "\"\\ude00\\ud83d\"", // pair in the wrong order
            "\"\\ud83d\\u\"",     // truncated low half
        ] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn parse_rejects_non_hex_unicode_escapes() {
        // `u32::from_str_radix` accepts a leading '+'; the escape must not.
        for bad in ["\"\\u+123\"", "\"\\u12g4\"", "\"\\u 123\"", "\"\\u12\""] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn astral_strings_roundtrip_through_the_emitter() {
        // The emitter writes astral characters as raw UTF-8; the parser
        // must accept both that and the escaped form identically.
        let v = JsonValue::str("emoji \u{1F600} and clef \u{1D11E}");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"open",
            "nul",
            "[1] x",
            "-",
            "{\"a\":}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn accessors_view_the_tree() {
        let v = JsonValue::parse("{\"x\": 2, \"y\": 2.5, \"s\": \"hi\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("y").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.as_array(), None);
    }

    #[test]
    fn committed_baseline_parses() {
        // The real regression input: the committed BENCH_1.json must stay
        // inside the dialect this parser reads.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_1.json");
        let text = std::fs::read_to_string(root).expect("BENCH_1.json exists at the repo root");
        let doc = JsonValue::parse(&text).expect("committed baseline parses");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("edgecolor-bench/v1")
        );
        assert!(doc.get("experiments").is_some());
    }
}
