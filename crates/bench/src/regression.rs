//! The bench-regression contract: diffing a fresh `edgecolor-bench/v1`
//! document against the committed `BENCH_1.json` baseline.
//!
//! The experiment harness is deterministic wherever the simulation is:
//! round counts, colors used, cut fractions, message/traffic counters and
//! the fault adversary's effect replay exactly for a given seed. Wall-clock
//! fields are host noise. This module encodes that split as an explicit
//! **tolerance table** ([`column_rule`], [`SCALE_FIELDS`] & friends) and
//! compares the two documents row by row:
//!
//! * `experiments` tables are matched by experiment id, then row-keyed on
//!   their input columns ([`key_columns`]); rows present in only one
//!   document are *skipped* (the committed baseline carries full-size
//!   SCALE/DYN/SHARD rows a CI smoke run does not reproduce), rows present
//!   in both are compared cell-by-cell under the column rules;
//! * the `scale` / `shard` / `fault` measurement arrays are keyed on their
//!   identity fields and compared field-by-field the same way.
//!
//! A non-empty mismatch list — or a suspiciously low compared-row count,
//! which would mean the contract silently stopped matching anything — fails
//! the build (`experiments --check-baseline`, CI job `bench-regression`).

use crate::json::JsonValue;

/// How one column/field is compared between baseline and fresh documents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Must match exactly (deterministic output).
    Exact,
    /// Numeric, must agree within the absolute tolerance (guards against
    /// float format round-trips, not against behavior change).
    AbsTol(f64),
    /// Host-dependent (wall clock, speedups, RSS): never compared.
    Ignore,
    /// Host-dependent, but the *fresh* value must be at least this floor;
    /// the baseline value is never compared. Used for
    /// `speedup_vs_sequential`: its absolute value is host noise, but after
    /// the executor learned to skip worker spawns that cannot overlap
    /// (single-hardware-thread hosts), a parallel run must never be
    /// meaningfully *slower* than the sequential one.
    MinFresh(f64),
}

/// The tolerance table for `experiments` table columns. Matching is by
/// column header; everything not listed here is compared [`Rule::Exact`].
const IGNORED_TABLE_COLUMNS: &[&str] = &[
    "wall ms",
    "repair wall ms",
    "initial color ms",
    "partition ms",
    "seq ms",
    "speedup",
    // `floor` is derived from the measuring host's parallelism.
    "floor",
    "cross KiB/round",
    // Wall-clock-derived throughput; the `scale` measurement array holds
    // the same quantity to a MinFresh floor instead.
    "rounds/s",
    // IO cold-start columns: wall clock and ratios thereof. The ≥ 10×
    // cold-start floor lives on the `io` measurement array
    // (`gated_speedup_vs_text`, [`IO_FIELDS`]), not on the table cells.
    "cold ms",
    "round ms",
    "vs text",
    "gate",
    "rss MB",
    // SERVE wall-clock-derived columns: throughput, repair latency
    // percentiles and tick counts depend on host timing and coalescing
    // luck. The qps floor lives on the `serve` measurement array
    // ([`SERVE_FIELDS`]); every admission/repair *count* stays Exact.
    "qps",
    "p50 ms",
    "p95 ms",
    "p99 ms",
    "p99.9 ms",
    "ticks",
];

/// Float-formatted but deterministic table columns: compared numerically
/// with a round-trip guard tolerance instead of string equality.
const FLOAT_TABLE_COLUMNS: &[&str] = &[
    "cut frac",
    "balance",
    "max defect ratio",
    "measured β",
    "guaranteed β",
    "touched frac",
    "colors/Δ",
    "cross msg/round",
    "ε",
    "red share",
    // E1/E3 scaling-fit columns: deterministic derivations of the (exactly
    // compared) round counts, formatted as floats.
    "rounds ×/doubling",
    "polylog fit c",
    // SCALE delivered-bytes-per-round: a pure function of the deterministic
    // metrics (`total_bits / 8 / rounds`), float-formatted.
    "KiB/round",
    // IO deterministic float columns: on-disk artifact size and the
    // locality metric of the reorder rows.
    "file MB",
    "edge span",
];

/// The comparison rule for a table column of experiment `id`.
pub fn column_rule(_id: &str, header: &str) -> Rule {
    if IGNORED_TABLE_COLUMNS.contains(&header) {
        Rule::Ignore
    } else if FLOAT_TABLE_COLUMNS.contains(&header) {
        Rule::AbsTol(1e-6)
    } else {
        Rule::Exact
    }
}

/// Whether an experiment table is *required* to match at least one
/// baseline row by key. The full-size SCALE/DYN/SHARD tables legitimately
/// share no row keys with a down-scaled smoke run; every other table (the
/// E-sweeps and FAULT, whose configurations are scale-invariant) matching
/// zero rows means its coverage silently evaporated — e.g. a selector
/// dropped from the CI command — and must fail the gate.
pub fn requires_matched_rows(id: &str) -> bool {
    !matches!(id, "SCALE" | "DYN" | "SHARD")
}

/// The columns forming a row's identity per experiment id (input
/// parameters, not measurements). Rows whose key exists in only one
/// document are skipped. Unknown experiment ids key on their first column.
pub fn key_columns(id: &str) -> &'static [&'static str] {
    match id {
        "E1" | "E6" | "E11" => &["Δ"],
        "E2" | "E7" => &["n"],
        "E3" | "E5" => &["Δ", "ε"],
        "E4/E8" => &["k", "δ"],
        "E9" => &["family"],
        "E10" => &["list shape"],
        "SCALE" => &["graph", "threads"],
        "DYN" => &["scenario", "n", "m"],
        "SHARD" => &["workload", "graph", "shards"],
        "FAULT" => &["workload", "graph", "seed"],
        "IO" => &["graph", "method"],
        "SERVE" => &["graph", "clients", "read‰", "graphs", "inflight"],
        _ => &[],
    }
}

/// Identity fields and compared fields of the `scale` measurement array.
pub const SCALE_FIELDS: (&[&str], &[(&str, Rule)]) = (
    &["graph", "threads"],
    &[
        ("n", Rule::Exact),
        ("m", Rule::Exact),
        ("rounds", Rule::Exact),
        ("messages", Rule::Exact),
        // Wall-clock derived, so its value is host noise — but it must not
        // fall below ~1.0: the executor runs the identical chunk geometry
        // inline when spawning cannot overlap, so even a 1-CPU host pays
        // only bookkeeping overhead over the sequential run.
        ("speedup_vs_sequential", Rule::MinFresh(0.95)),
        // Absolute throughput is host noise too, but falling below one
        // simulated round per second on any row — the million-edge suite
        // sustains an order of magnitude more on a single core — means the
        // delivery path fell off a cliff (e.g. an O(n·threads) scan or a
        // per-message allocation crept back in).
        ("rounds_per_sec", Rule::MinFresh(1.0)),
        // Deterministic derivation of the exactly-compared metrics
        // (`total_bits / 8 / rounds`); the tolerance only guards the float
        // round-trip through JSON.
        ("bytes_per_round", Rule::AbsTol(1e-6)),
        // Allocation events per round are a deterministic property of the
        // engine (counted by the experiments binary's allocator shim on the
        // cheapest rep) — any drift is a real behavior change.
        ("allocs_per_round", Rule::Exact),
    ],
);

/// Identity fields and compared fields of the `shard` measurement array.
pub const SHARD_FIELDS: (&[&str], &[(&str, Rule)]) = (
    &["workload", "graph", "shards"],
    &[
        ("n", Rule::Exact),
        ("m", Rule::Exact),
        ("rounds", Rule::Exact),
        ("cut_fraction", Rule::AbsTol(1e-9)),
        ("balance_factor", Rule::AbsTol(1e-9)),
        ("cross_messages_per_round", Rule::AbsTol(1e-6)),
        ("cross_bytes_per_round", Rule::AbsTol(1e-6)),
        ("repaired_edges", Rule::Exact),
    ],
);

/// Identity fields and compared fields of the `fault` measurement array.
pub const FAULT_FIELDS: (&[&str], &[(&str, Rule)]) = (
    &["workload", "graph", "seed"],
    &[
        ("n", Rule::Exact),
        ("m", Rule::Exact),
        ("drop_permille", Rule::Exact),
        ("duplicate_permille", Rule::Exact),
        ("delay_permille", Rule::Exact),
        ("crashes", Rule::Exact),
        ("link_cuts", Rule::Exact),
        ("rounds", Rule::Exact),
        ("delivered", Rule::Exact),
        ("dropped", Rule::Exact),
        ("duplicated", Rule::Exact),
        ("delayed", Rule::Exact),
        ("crash_dropped", Rule::Exact),
        ("partition_dropped", Rule::Exact),
        ("corrupted_edges", Rule::Exact),
        ("conflicts_found", Rule::Exact),
        ("repaired_edges", Rule::Exact),
    ],
);

/// Identity fields and compared fields of the `io` measurement array. The
/// IO configurations are scale-invariant (the same graphs at every selector
/// size, like FAULT), so the structural fields are part of the contract on
/// every run: the on-disk artifact sizes, the served-adjacency digest and
/// the reorder locality metric are deterministic, and the snapshot-backed
/// cold-start paths on the million-edge torus must stay ≥ 10× faster than
/// the text parse (`gated_speedup_vs_text`; `Null` on rows the floor does
/// not apply to, which [`Rule::MinFresh`] passes).
pub const IO_FIELDS: (&[&str], &[(&str, Rule)]) = (
    &["graph", "method"],
    &[
        ("n", Rule::Exact),
        ("m", Rule::Exact),
        ("file_bytes", Rule::Exact),
        ("adjacency_checksum", Rule::Exact),
        ("mean_edge_span", Rule::AbsTol(1e-6)),
        ("gated_speedup_vs_text", Rule::MinFresh(10.0)),
    ],
);

/// Identity fields and compared fields of the `serve` measurement array.
/// The loadgen's disjoint-anchor workload makes every admission count
/// deterministic (client-side `accepted`/`rejected`, not the server's
/// retry-inflated counters), coalescing-invariance makes the repair totals
/// deterministic, and the in-harness audits (`checker_valid`,
/// `replay_equivalent`) are hard booleans. Throughput is held to a
/// lenient qps floor — the real floor is "the daemon still serves", an
/// order of magnitude below any plausible host — while latency
/// percentiles, tick counts and backpressure retries are wall-clock noise
/// and deliberately not listed.
pub const SERVE_FIELDS: (&[&str], &[(&str, Rule)]) = (
    &["graph", "clients", "read_permille", "graphs", "inflight"],
    &[
        ("n", Rule::Exact),
        ("m0", Rule::Exact),
        ("final_m", Rule::Exact),
        ("ops", Rule::Exact),
        ("reads", Rule::Exact),
        ("accepted", Rule::Exact),
        ("rejected", Rule::Exact),
        ("protocol_errors", Rule::Exact),
        ("repaired_edges", Rule::Exact),
        ("full_recolors", Rule::Exact),
        ("checker_valid", Rule::Exact),
        ("replay_equivalent", Rule::Exact),
        ("qps", Rule::MinFresh(10.0)),
    ],
);

/// The outcome of a baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    /// Rows whose key matched and whose cells were compared.
    pub compared_rows: usize,
    /// Rows present in only one document (different run scale).
    pub skipped_rows: usize,
    /// Human-readable mismatch descriptions (empty = no regression).
    pub mismatches: Vec<String>,
}

impl RegressionReport {
    /// `true` when no mismatch was found *and* the comparison was
    /// non-vacuous (at least `min_rows` rows actually matched by key).
    pub fn is_ok(&self, min_rows: usize) -> bool {
        self.mismatches.is_empty() && self.compared_rows >= min_rows
    }

    /// Renders the report as the diff artifact CI uploads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-regression: {} rows compared, {} skipped (scale mismatch), {} mismatches\n",
            self.compared_rows,
            self.skipped_rows,
            self.mismatches.len()
        ));
        for m in &self.mismatches {
            out.push_str("REGRESSION: ");
            out.push_str(m);
            out.push('\n');
        }
        if self.mismatches.is_empty() {
            out.push_str("no regressions\n");
        }
        out
    }
}

/// Compares a freshly emitted document against the committed baseline.
/// Both must be `edgecolor-bench/v1` documents (see `docs/BENCH_SCHEMA.md`).
pub fn compare(baseline: &JsonValue, fresh: &JsonValue) -> RegressionReport {
    let mut report = RegressionReport::default();
    for (doc, which) in [(baseline, "baseline"), (fresh, "fresh")] {
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("edgecolor-bench/v1") => {}
            other => report.mismatches.push(format!(
                "{which} document schema is {other:?}, expected edgecolor-bench/v1"
            )),
        }
    }
    compare_experiment_tables(baseline, fresh, &mut report);
    // The `fault` and `io` arrays are scale-invariant (identical
    // configurations in baseline and smoke runs), so they must match;
    // `scale`/`shard` rows legitimately differ between full-size and smoke
    // runs.
    for (array, (keys, fields), require_match) in [
        ("scale", SCALE_FIELDS, false),
        ("shard", SHARD_FIELDS, false),
        ("fault", FAULT_FIELDS, true),
        ("io", IO_FIELDS, true),
        ("serve", SERVE_FIELDS, true),
    ] {
        compare_measurement_array(
            baseline,
            fresh,
            array,
            keys,
            fields,
            require_match,
            &mut report,
        );
    }
    report
}

fn empty() -> Vec<JsonValue> {
    Vec::new()
}

fn compare_experiment_tables(
    baseline: &JsonValue,
    fresh: &JsonValue,
    report: &mut RegressionReport,
) {
    let base_tables = baseline
        .get("experiments")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_else(empty);
    let fresh_tables = fresh
        .get("experiments")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_else(empty);
    for base in &base_tables {
        let Some(id) = base.get("id").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some(new) = fresh_tables
            .iter()
            .find(|t| t.get("id").and_then(JsonValue::as_str) == Some(id))
        else {
            report
                .mismatches
                .push(format!("experiment {id} missing from the fresh run"));
            continue;
        };
        let headers = string_array(base.get("headers"));
        let fresh_headers = string_array(new.get("headers"));
        if headers != fresh_headers {
            report.mismatches.push(format!(
                "experiment {id} headers changed (regenerate the baseline): {headers:?} vs {fresh_headers:?}"
            ));
            continue;
        }
        let key_idx: Vec<usize> = {
            let wanted = key_columns(id);
            if wanted.is_empty() {
                vec![0]
            } else {
                wanted
                    .iter()
                    .filter_map(|k| headers.iter().position(|h| h == k))
                    .collect()
            }
        };
        let row_key = |row: &[String]| -> String {
            key_idx
                .iter()
                .map(|&i| row.get(i).cloned().unwrap_or_default())
                .collect::<Vec<_>>()
                .join("|")
        };
        let base_rows = table_rows(base);
        let fresh_rows = table_rows(new);
        // When a round count drifts, the diff artifact names the recursion
        // level that charged the most rounds (the ledger's dominant stage),
        // so a super-polylog regression points at the offending stage
        // instead of just a bad total.
        let stage_idx = headers.iter().position(|h| h == "dominant stage");
        let mut matched = 0usize;
        for brow in &base_rows {
            let key = row_key(brow);
            let Some(frow) = fresh_rows.iter().find(|r| row_key(r) == key) else {
                report.skipped_rows += 1;
                continue;
            };
            report.compared_rows += 1;
            matched += 1;
            let stage_hint = |header: &str| -> String {
                if !header.contains("rounds") {
                    return String::new();
                }
                stage_idx
                    .and_then(|i| frow.get(i))
                    .map(|s| format!(" (fresh dominant stage: {s})"))
                    .unwrap_or_default()
            };
            for (i, header) in headers.iter().enumerate() {
                let (Some(b), Some(f)) = (brow.get(i), frow.get(i)) else {
                    continue;
                };
                match column_rule(id, header) {
                    Rule::Ignore => {}
                    Rule::Exact => {
                        if b != f {
                            report.mismatches.push(format!(
                                "{id}[{key}].{header}: baseline `{b}` vs fresh `{f}`{}",
                                stage_hint(header)
                            ));
                        }
                    }
                    Rule::AbsTol(tol) => {
                        let (pb, pf) = (b.parse::<f64>(), f.parse::<f64>());
                        match (pb, pf) {
                            (Ok(x), Ok(y)) if (x - y).abs() <= tol => {}
                            _ if b == f => {} // non-numeric but identical (e.g. "-")
                            _ => report.mismatches.push(format!(
                                "{id}[{key}].{header}: baseline `{b}` vs fresh `{f}` (tol {tol})"
                            )),
                        }
                    }
                    Rule::MinFresh(floor) => {
                        if f.parse::<f64>().is_ok_and(|y| y < floor) {
                            report.mismatches.push(format!(
                                "{id}[{key}].{header}: fresh `{f}` below floor {floor}"
                            ));
                        }
                    }
                }
            }
        }
        for frow in &fresh_rows {
            if !base_rows.iter().any(|b| row_key(b) == row_key(frow)) {
                report.skipped_rows += 1;
            }
        }
        // A scale-invariant table that matched nothing lost its coverage
        // (e.g. a selector dropped from the CI command) — that is a gate
        // failure, not a skip.
        if matched == 0 && !base_rows.is_empty() && requires_matched_rows(id) {
            report.mismatches.push(format!(
                "experiment {id}: no fresh row matched any of the {} baseline rows — coverage lost",
                base_rows.len()
            ));
        }
    }
    // A table present only in the fresh run means the baseline predates an
    // experiment: regenerate it so the new rows become part of the contract.
    for new in &fresh_tables {
        let Some(id) = new.get("id").and_then(JsonValue::as_str) else {
            continue;
        };
        if !base_tables
            .iter()
            .any(|t| t.get("id").and_then(JsonValue::as_str) == Some(id))
        {
            report.mismatches.push(format!(
                "experiment {id} exists in the fresh run but not in the baseline (regenerate BENCH_1.json)"
            ));
        }
    }
}

fn compare_measurement_array(
    baseline: &JsonValue,
    fresh: &JsonValue,
    array: &str,
    keys: &[&str],
    fields: &[(&str, Rule)],
    require_match: bool,
    report: &mut RegressionReport,
) {
    let base_rows = baseline
        .get(array)
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_else(empty);
    let fresh_rows = fresh
        .get(array)
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_else(empty);
    let key_of = |row: &JsonValue| -> String {
        keys.iter()
            .map(|k| match row.get(k) {
                Some(JsonValue::Str(s)) => s.clone(),
                Some(other) => other.render().trim().to_string(),
                None => String::new(),
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut matched = 0usize;
    for brow in &base_rows {
        let key = key_of(brow);
        let Some(frow) = fresh_rows.iter().find(|r| key_of(r) == key) else {
            report.skipped_rows += 1;
            continue;
        };
        report.compared_rows += 1;
        matched += 1;
        for (field, rule) in fields {
            let (b, f) = (brow.get(field), frow.get(field));
            let mismatch = match rule {
                Rule::Ignore => false,
                Rule::Exact => b != f,
                Rule::AbsTol(tol) => {
                    match (b.and_then(JsonValue::as_f64), f.and_then(JsonValue::as_f64)) {
                        (Some(x), Some(y)) => (x - y).abs() > *tol,
                        _ => b != f, // both Null (or both absent) is fine
                    }
                }
                // The baseline value is never consulted; only the fresh
                // value is held to the floor (absent/null passes — e.g. a
                // baseline recorded before the field existed).
                Rule::MinFresh(floor) => f.and_then(JsonValue::as_f64).is_some_and(|y| y < *floor),
            };
            if mismatch {
                let fresh_cell =
                    f.map_or("<absent>".to_string(), |v| v.render().trim().to_string());
                let detail = match rule {
                    Rule::MinFresh(floor) => format!("fresh {fresh_cell} below floor {floor}"),
                    _ => format!(
                        "baseline {} vs fresh {fresh_cell}",
                        b.map_or("<absent>".to_string(), |v| v.render().trim().to_string()),
                    ),
                };
                report
                    .mismatches
                    .push(format!("{array}[{key}].{field}: {detail}"));
            }
        }
    }
    for frow in &fresh_rows {
        if !base_rows.iter().any(|b| key_of(b) == key_of(frow)) {
            report.skipped_rows += 1;
        }
    }
    if require_match && matched == 0 && !base_rows.is_empty() {
        report.mismatches.push(format!(
            "{array}: no fresh row matched any of the {} baseline rows — coverage lost",
            base_rows.len()
        ));
    }
}

fn string_array(value: Option<&JsonValue>) -> Vec<String> {
    value
        .and_then(JsonValue::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

fn table_rows(table: &JsonValue) -> Vec<Vec<String>> {
    table
        .get("rows")
        .and_then(JsonValue::as_array)
        .map(|rows| {
            rows.iter()
                .map(|row| {
                    row.as_array()
                        .map(|cells| {
                            cells
                                .iter()
                                .filter_map(|c| c.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rounds: &str, wall: &str, cut: f64) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::str("edgecolor-bench/v1")),
            (
                "experiments",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("id", JsonValue::str("E1")),
                    (
                        "headers",
                        JsonValue::Arr(vec![
                            JsonValue::str("Δ"),
                            JsonValue::str("ours rounds"),
                            JsonValue::str("wall ms"),
                        ]),
                    ),
                    (
                        "rows",
                        JsonValue::Arr(vec![JsonValue::Arr(vec![
                            JsonValue::str("8"),
                            JsonValue::str(rounds),
                            JsonValue::str(wall),
                        ])]),
                    ),
                ])]),
            ),
            (
                "shard",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("workload", JsonValue::str("flood")),
                    ("graph", JsonValue::str("g")),
                    ("shards", JsonValue::Int(4)),
                    ("n", JsonValue::Int(10)),
                    ("m", JsonValue::Int(20)),
                    ("rounds", JsonValue::Int(7)),
                    ("cut_fraction", JsonValue::Num(cut)),
                    ("balance_factor", JsonValue::Num(1.0)),
                    ("cross_messages_per_round", JsonValue::Null),
                    ("cross_bytes_per_round", JsonValue::Null),
                    ("repaired_edges", JsonValue::Null),
                    ("wall_ms", JsonValue::Num(1.25)),
                ])]),
            ),
            ("scale", JsonValue::Arr(vec![])),
            ("fault", JsonValue::Arr(vec![])),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc("41", "3.5", 0.25);
        let report = compare(&a, &a);
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        assert_eq!(report.compared_rows, 2);
        assert!(report.is_ok(2));
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn wall_clock_differences_are_ignored() {
        let report = compare(&doc("41", "3.5", 0.25), &doc("41", "99.9", 0.25));
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
    }

    #[test]
    fn round_count_regressions_fail() {
        let report = compare(&doc("41", "3.5", 0.25), &doc("42", "3.5", 0.25));
        assert_eq!(report.mismatches.len(), 1);
        assert!(report.mismatches[0].contains("ours rounds"), "{report:?}");
        assert!(!report.is_ok(1));
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn cut_fraction_drift_beyond_tolerance_fails() {
        let report = compare(&doc("41", "3.5", 0.25), &doc("41", "3.5", 0.35));
        assert_eq!(report.mismatches.len(), 1);
        assert!(report.mismatches[0].contains("cut_fraction"));
        // Within tolerance passes.
        let report = compare(&doc("41", "3.5", 0.25), &doc("41", "3.5", 0.25 + 1e-12));
        assert!(report.mismatches.is_empty());
    }

    #[test]
    fn missing_experiments_and_bad_schema_fail() {
        let a = doc("41", "3.5", 0.25);
        let mut b = doc("41", "3.5", 0.25);
        if let JsonValue::Obj(fields) = &mut b {
            fields.retain(|(k, _)| k != "experiments");
            fields.push(("experiments".into(), JsonValue::Arr(vec![])));
        }
        let report = compare(&a, &b);
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.contains("missing from the fresh run")));

        let plain = JsonValue::obj(vec![("schema", JsonValue::str("something/else"))]);
        let report = compare(&plain, &plain);
        assert_eq!(report.mismatches.len(), 2);
    }

    #[test]
    fn scale_mismatched_rows_are_skipped_not_failed() {
        let a = doc("41", "3.5", 0.25);
        let mut b = doc("41", "3.5", 0.25);
        // Rename the fresh shard row's graph: keys no longer match.
        if let Some(JsonValue::Obj(row)) = b
            .get("shard")
            .and_then(JsonValue::as_array)
            .map(|arr| arr[0].clone())
            .as_ref()
        {
            let mut row = row.clone();
            for (k, v) in &mut row {
                if k == "graph" {
                    *v = JsonValue::str("bigger-run");
                }
            }
            if let JsonValue::Obj(fields) = &mut b {
                for (k, v) in fields.iter_mut() {
                    if k == "shard" {
                        *v = JsonValue::Arr(vec![JsonValue::Obj(row.clone())]);
                    }
                }
            }
        }
        let report = compare(&a, &b);
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        assert_eq!(report.compared_rows, 1); // only the E1 row
        assert_eq!(report.skipped_rows, 2); // baseline + fresh shard rows
    }

    #[test]
    fn lost_coverage_is_a_failure_not_a_skip() {
        let a = doc("41", "3.5", 0.25);
        // Fresh run lost the E1 rows entirely (e.g. a dropped selector):
        // keys match nothing, which must fail rather than silently skip.
        let mut b = doc("41", "3.5", 0.25);
        if let JsonValue::Obj(fields) = &mut b {
            for (k, v) in fields.iter_mut() {
                if k == "experiments" {
                    if let JsonValue::Arr(tables) = v {
                        if let JsonValue::Obj(table) = &mut tables[0] {
                            for (tk, tv) in table.iter_mut() {
                                if tk == "rows" {
                                    *tv = JsonValue::Arr(vec![]);
                                }
                            }
                        }
                    }
                }
            }
        }
        let report = compare(&a, &b);
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("E1") && m.contains("coverage lost")),
            "{:?}",
            report.mismatches
        );
    }

    #[test]
    fn fresh_only_experiments_require_a_baseline_regen() {
        let a = doc("41", "3.5", 0.25);
        let mut b = doc("41", "3.5", 0.25);
        if let JsonValue::Obj(fields) = &mut b {
            for (k, v) in fields.iter_mut() {
                if k == "experiments" {
                    if let JsonValue::Arr(tables) = v {
                        tables.push(JsonValue::obj(vec![
                            ("id", JsonValue::str("BRAND_NEW")),
                            ("headers", JsonValue::Arr(vec![])),
                            ("rows", JsonValue::Arr(vec![])),
                        ]));
                    }
                }
            }
        }
        let report = compare(&a, &b);
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("BRAND_NEW") && m.contains("regenerate")),
            "{:?}",
            report.mismatches
        );
    }

    #[test]
    fn required_match_arrays_fail_when_emptied() {
        // Move the baseline's shard row into `fault` shape? Simpler: a
        // baseline with one fault row and a fresh doc with none.
        let fault_row = JsonValue::obj(vec![
            ("workload", JsonValue::str("flood")),
            ("graph", JsonValue::str("g/full")),
            ("seed", JsonValue::Int(7)),
            ("rounds", JsonValue::Int(5)),
        ]);
        let with_fault = |rows: Vec<JsonValue>| {
            JsonValue::obj(vec![
                ("schema", JsonValue::str("edgecolor-bench/v1")),
                ("experiments", JsonValue::Arr(vec![])),
                ("scale", JsonValue::Arr(vec![])),
                ("shard", JsonValue::Arr(vec![])),
                ("fault", JsonValue::Arr(rows)),
            ])
        };
        let report = compare(&with_fault(vec![fault_row.clone()]), &with_fault(vec![]));
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("fault") && m.contains("coverage lost")),
            "{:?}",
            report.mismatches
        );
        // Scale/shard arrays keep their skip semantics.
        let report = compare(
            &with_fault(vec![fault_row.clone()]),
            &with_fault(vec![fault_row]),
        );
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
    }

    #[test]
    fn tolerance_table_classifies_columns() {
        assert_eq!(column_rule("E1", "wall ms"), Rule::Ignore);
        assert_eq!(column_rule("SCALE", "speedup"), Rule::Ignore);
        assert_eq!(column_rule("SCALE", "floor"), Rule::Ignore);
        assert_eq!(column_rule("SHARD", "cut frac"), Rule::AbsTol(1e-6));
        // The round-complexity contract: E1/E3 round counts are exact-match.
        assert_eq!(column_rule("E1", "ours rounds"), Rule::Exact);
        assert_eq!(column_rule("E3", "rounds"), Rule::Exact);
        assert_eq!(column_rule("E1", "dominant stage"), Rule::Exact);
        // The derived scaling-fit columns are float-compared.
        assert_eq!(column_rule("E1", "rounds ×/doubling"), Rule::AbsTol(1e-6));
        assert_eq!(column_rule("E1", "polylog fit c"), Rule::AbsTol(1e-6));
        assert_eq!(column_rule("FAULT", "dropped"), Rule::Exact);
        assert_eq!(key_columns("E3"), &["Δ", "ε"]);
        assert_eq!(key_columns("FAULT"), &["workload", "graph", "seed"]);
        assert!(key_columns("E999").is_empty());
        // The scale array's speedup is floor-checked, never diffed.
        assert!(SCALE_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "speedup_vs_sequential" && r == Rule::MinFresh(0.95)));
        // The flat-arena delivery columns: throughput is floor-checked,
        // delivered bytes are float-compared, allocation counts are exact.
        assert_eq!(column_rule("SCALE", "rounds/s"), Rule::Ignore);
        assert_eq!(column_rule("SCALE", "KiB/round"), Rule::AbsTol(1e-6));
        assert_eq!(column_rule("SCALE", "allocs/round"), Rule::Exact);
        assert!(SCALE_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "rounds_per_sec" && r == Rule::MinFresh(1.0)));
        assert!(SCALE_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "bytes_per_round" && r == Rule::AbsTol(1e-6)));
        assert!(SCALE_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "allocs_per_round" && r == Rule::Exact));
        // The IO experiment: wall-clock columns ignored, structural columns
        // compared, the cold-start floor on the measurement array.
        assert_eq!(key_columns("IO"), &["graph", "method"]);
        assert_eq!(column_rule("IO", "cold ms"), Rule::Ignore);
        assert_eq!(column_rule("IO", "vs text"), Rule::Ignore);
        assert_eq!(column_rule("IO", "file MB"), Rule::AbsTol(1e-6));
        assert_eq!(column_rule("IO", "edge span"), Rule::AbsTol(1e-6));
        assert_eq!(column_rule("IO", "checksum"), Rule::Exact);
        assert!(requires_matched_rows("IO"));
        assert!(IO_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "gated_speedup_vs_text" && r == Rule::MinFresh(10.0)));
        assert!(IO_FIELDS
            .1
            .iter()
            .any(|&(f, r)| f == "adjacency_checksum" && r == Rule::Exact));
    }

    fn io_doc(gated: JsonValue, checksum: i64) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::str("edgecolor-bench/v1")),
            ("experiments", JsonValue::Arr(vec![])),
            ("scale", JsonValue::Arr(vec![])),
            ("shard", JsonValue::Arr(vec![])),
            ("fault", JsonValue::Arr(vec![])),
            (
                "io",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("graph", JsonValue::str("grid_torus(1000x500)")),
                    ("method", JsonValue::str("zero_copy_open")),
                    ("n", JsonValue::Int(500000)),
                    ("m", JsonValue::Int(1000000)),
                    ("file_bytes", JsonValue::Int(18000204)),
                    ("adjacency_checksum", JsonValue::Int(checksum)),
                    ("mean_edge_span", JsonValue::Null),
                    ("gated_speedup_vs_text", gated),
                    ("cold_start_ms", JsonValue::Num(12.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn io_cold_start_floor_gates_fresh_values_only() {
        // Baseline below floor, fresh above: passes (only fresh counts).
        let report = compare(
            &io_doc(JsonValue::Num(4.0), 7),
            &io_doc(JsonValue::Num(31.0), 7),
        );
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        // Fresh below the 10× floor: fails.
        let report = compare(
            &io_doc(JsonValue::Num(31.0), 7),
            &io_doc(JsonValue::Num(8.5), 7),
        );
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("gated_speedup_vs_text") && m.contains("below floor 10")),
            "{:?}",
            report.mismatches
        );
        // Null (a row the floor does not apply to) passes the gate, but a
        // drifted adjacency digest is an exact-match failure.
        let report = compare(&io_doc(JsonValue::Null, 7), &io_doc(JsonValue::Null, 8));
        assert_eq!(report.mismatches.len(), 1, "{:?}", report.mismatches);
        assert!(report.mismatches[0].contains("adjacency_checksum"));
        // An emptied fresh `io` array is lost coverage, not a skip.
        let report = compare(&io_doc(JsonValue::Null, 7), &{
            let mut d = io_doc(JsonValue::Null, 7);
            if let JsonValue::Obj(fields) = &mut d {
                for (k, v) in fields.iter_mut() {
                    if k == "io" {
                        *v = JsonValue::Arr(vec![]);
                    }
                }
            }
            d
        });
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("io") && m.contains("coverage lost")),
            "{:?}",
            report.mismatches
        );
    }

    fn scale_doc(speedup: f64) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::str("edgecolor-bench/v1")),
            ("experiments", JsonValue::Arr(vec![])),
            (
                "scale",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("graph", JsonValue::str("g")),
                    ("threads", JsonValue::Int(2)),
                    ("n", JsonValue::Int(10)),
                    ("m", JsonValue::Int(20)),
                    ("rounds", JsonValue::Int(7)),
                    ("messages", JsonValue::Int(280)),
                    ("speedup_vs_sequential", JsonValue::Num(speedup)),
                ])]),
            ),
            ("shard", JsonValue::Arr(vec![])),
            ("fault", JsonValue::Arr(vec![])),
        ])
    }

    #[test]
    fn speedup_below_floor_fails_regardless_of_baseline() {
        // Baseline recorded a bad speedup (pre-fix); only the fresh value
        // counts against the floor.
        let report = compare(&scale_doc(0.62), &scale_doc(0.97));
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        let report = compare(&scale_doc(1.8), &scale_doc(0.62));
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("speedup_vs_sequential") && m.contains("below floor")),
            "{:?}",
            report.mismatches
        );
    }

    #[test]
    fn round_regressions_name_the_dominant_stage() {
        let with_stage = |rounds: &str, stage: &str| {
            JsonValue::obj(vec![
                ("schema", JsonValue::str("edgecolor-bench/v1")),
                (
                    "experiments",
                    JsonValue::Arr(vec![JsonValue::obj(vec![
                        ("id", JsonValue::str("E1")),
                        (
                            "headers",
                            JsonValue::Arr(vec![
                                JsonValue::str("Δ"),
                                JsonValue::str("ours rounds"),
                                JsonValue::str("dominant stage"),
                            ]),
                        ),
                        (
                            "rows",
                            JsonValue::Arr(vec![JsonValue::Arr(vec![
                                JsonValue::str("16"),
                                JsonValue::str(rounds),
                                JsonValue::str(stage),
                            ])]),
                        ),
                    ])]),
                ),
                ("scale", JsonValue::Arr(vec![])),
                ("shard", JsonValue::Arr(vec![])),
                ("fault", JsonValue::Arr(vec![])),
            ])
        };
        let report = compare(
            &with_stage("447", "orientation"),
            &with_stage("13566", "d4-sweep"),
        );
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| m.contains("ours rounds") && m.contains("dominant stage: d4-sweep")),
            "{:?}",
            report.mismatches
        );
    }
}
