//! Hot-swap battery: epoch coherence under concurrent reads, and corrupt
//! snapshots that must be rejected with the old generation still serving.
//!
//! The tear detector: the daemon boots on an 8×8 torus (m = 128) and swaps
//! to a 6×6 snapshot (m = 72). Stable id 100 is live-and-colored in the
//! old generation and unknown in the new one, so every concurrent lookup
//! of it must answer `(epoch 1, Colored)` or `(epoch 2, Unknown)` — any
//! other pairing is a torn read across the swap.

use distgraph::{generators, DynamicGraph, EdgeColoring};
use distserve::wire::{LookupOutcome, RejectCode};
use distserve::{Client, ClientError, DaemonHandle, Rejection, ServeConfig, ServerCore};
use distsim::IdAssignment;
use diststore::SnapshotSource;
use edgecolor::{ColoringParams, Recoloring};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Encodes a snapshot of a properly colored torus (exercising the
/// daemon's adopt-the-stored-coloring boot path on swap).
fn colored_torus_snapshot(rows: usize, cols: usize) -> Vec<u8> {
    let dg = DynamicGraph::from_graph(generators::grid_torus(rows, cols));
    let ids = IdAssignment::scattered(dg.n(), 7);
    let params = ColoringParams::new(0.5);
    let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).expect("colorable");
    let coloring: EdgeColoring = rec.coloring().clone();
    SnapshotSource::dynamic(&dg)
        .with_coloring(&coloring)
        .encode()
        .expect("encodes")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "distserve_hot_swap_{name}_{}.snap",
        std::process::id()
    ))
}

#[test]
fn concurrent_reads_observe_a_consistent_epoch_across_a_swap() {
    let snap_path = temp_path("target");
    std::fs::write(&snap_path, colored_torus_snapshot(6, 6)).expect("write snapshot");

    // Old generation: 8×8 torus, m = 128 — stable id 100 is live in the
    // old epoch and beyond the new snapshot's id range.
    let config = ServeConfig {
        tick_interval_ms: None,
        ..ServeConfig::default()
    };
    let core = ServerCore::new(generators::grid_torus(8, 8), config).expect("boot");
    let daemon = DaemonHandle::spawn(core).expect("bind");
    let addr = daemon.addr();
    const PROBE: u64 = 100;

    let swapped = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3usize {
            s.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                // Keep reading until the swap lands, then a little longer so
                // post-swap answers are exercised too.
                let mut post_swap = 0usize;
                while post_swap < 50 {
                    let (outcome, epoch, _) = client.lookup(PROBE).expect("lookup");
                    match epoch {
                        1 => assert!(
                            matches!(outcome, LookupOutcome::Colored { .. }),
                            "epoch 1 must still serve the old graph, got {outcome:?}"
                        ),
                        2 => {
                            assert!(
                                matches!(outcome, LookupOutcome::Unknown),
                                "epoch 2 must serve the new graph, got {outcome:?}"
                            );
                            post_swap += 1;
                        }
                        other => panic!("torn or invalid epoch {other}: {outcome:?}"),
                    }
                    if swapped.load(Ordering::SeqCst) {
                        post_swap += 1; // bounded exit even if epoch-2 reads lag
                    }
                }
            });
        }
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(5));
            let mut client = Client::connect(addr).expect("connect");
            let sw = client.swap(&snap_path.to_string_lossy()).expect("swap rpc");
            assert_eq!((sw.epoch, sw.n, sw.m), (2, 36, 72));
            swapped.store(true, Ordering::SeqCst);
        });
    });

    // The new generation is fully serving: coloring adopted and valid,
    // mutations admissible on the 6×6 node range.
    let core = daemon.core().clone();
    let st = core.state_snapshot();
    assert_eq!(st.epoch(), 2);
    assert_eq!(st.dynamic().graph().m(), 72);
    check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
    check_complete(st.dynamic().graph(), st.coloring()).assert_ok();
    let mut client = Client::connect(addr).expect("connect");
    client
        .submit(vec![], vec![(0, 7)])
        .expect("submit")
        .expect("admissible on the 6x6 range");
    match client.submit(vec![], vec![(0, 40)]).expect("submit") {
        Err(Rejection {
            code: RejectCode::NodeOutOfRange,
            ..
        }) => {}
        other => panic!("epoch-2 admission used stale bounds: {other:?}"),
    }
    daemon.shutdown();
    let _ = std::fs::remove_file(&snap_path);
}

#[test]
fn corrupt_snapshot_swaps_are_rejected_and_the_old_generation_keeps_serving() {
    let config = ServeConfig {
        tick_interval_ms: None,
        ..ServeConfig::default()
    };
    let core = ServerCore::new(generators::grid_torus(6, 6), config).expect("boot");
    let daemon = DaemonHandle::spawn(core).expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");

    // A nonexistent path, raw garbage, and a valid snapshot with its magic
    // flipped: all three must answer SwapRejected, never kill the daemon.
    let missing = temp_path("missing");
    let garbage = temp_path("garbage");
    std::fs::write(&garbage, b"definitely not a snapshot").expect("write");
    let flipped = temp_path("flipped");
    let mut bytes = colored_torus_snapshot(6, 6);
    bytes[0] ^= 0xFF;
    std::fs::write(&flipped, bytes).expect("write");

    for path in [&missing, &garbage, &flipped] {
        match client.swap(&path.to_string_lossy()) {
            Err(ClientError::SwapRejected { .. }) => {}
            other => panic!("corrupt swap answered {:?}", other.map(|_| ())),
        }
    }

    // Old generation intact: epoch still 1, reads and writes still served.
    match client.lookup(0).expect("lookup") {
        (LookupOutcome::Colored { .. }, 1, _) => {}
        other => panic!("old generation stopped serving: {other:?}"),
    }
    client
        .submit(vec![], vec![(0, 7)])
        .expect("submit")
        .expect("admissible");
    assert_eq!(client.flush().expect("flush").epoch, 1);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.swaps, 0);
    assert_eq!(metrics.swaps_rejected, 3);
    assert_eq!(metrics.epoch, 1);

    let core = daemon.core().clone();
    let st = core.state_snapshot();
    check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
    check_complete(st.dynamic().graph(), st.coloring()).assert_ok();
    daemon.shutdown();
    let _ = std::fs::remove_file(&garbage);
    let _ = std::fs::remove_file(&flipped);
}

/// Admitted-but-unapplied batches are flushed into the *old* generation
/// before the swap publishes, so nothing admitted is ever dropped.
#[test]
fn pending_admissions_drain_into_the_old_epoch_before_the_swap() {
    let snap_path = temp_path("drain_target");
    std::fs::write(&snap_path, colored_torus_snapshot(6, 6)).expect("write snapshot");

    let config = ServeConfig {
        tick_interval_ms: None,
        ..ServeConfig::default()
    };
    let core = ServerCore::new(generators::grid_torus(8, 8), config).expect("boot");
    let daemon = DaemonHandle::spawn(core).expect("bind");
    let core = daemon.core().clone();
    let mut client = Client::connect(daemon.addr()).expect("connect");

    // Admit two batches; no ticker runs, so they sit in the queue.
    client
        .submit(vec![], vec![(0, 9)])
        .expect("submit")
        .expect("admissible");
    client
        .submit(vec![3], vec![])
        .expect("submit")
        .expect("admissible");
    assert_eq!(core.queue_depth(), 2);

    assert_eq!(
        client
            .swap(&snap_path.to_string_lossy())
            .expect("swap rpc")
            .epoch,
        2
    );
    assert_eq!(
        core.queue_depth(),
        0,
        "swap published with admissions still queued"
    );
    // The drained batches were applied to epoch 1 — the log proves it.
    let log = core.batch_log();
    let epoch1_ops: usize = log
        .iter()
        .filter(|(epoch, _)| *epoch == 1)
        .map(|(_, b)| b.delete.len() + b.insert.len())
        .sum();
    assert_eq!(epoch1_ops, 2);
    daemon.shutdown();
    let _ = std::fs::remove_file(&snap_path);
}
