//! A minimal JSON writer for the machine-readable benchmark artifacts.
//!
//! The workspace's offline `serde` stand-in provides marker traits only (see
//! `crates/compat/README.md`), so the `BENCH_*.json` files are rendered by
//! this hand-rolled emitter instead. It covers exactly what the bench schema
//! needs: objects, arrays, strings (with escaping), integers, finite floats
//! and booleans.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a fractional part).
    Int(i64),
    /// A float; non-finite values are rendered as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Always include a decimal point so the field is
                    // unambiguously a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null\n");
        assert_eq!(JsonValue::Bool(true).render(), "true\n");
        assert_eq!(JsonValue::Int(-7).render(), "-7\n");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5\n");
        assert_eq!(JsonValue::Num(3.0).render(), "3.0\n");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj(vec![
            ("id", JsonValue::str("E1")),
            (
                "rows",
                JsonValue::Arr(vec![
                    JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
                    JsonValue::Arr(vec![]),
                ]),
            ),
            ("empty", JsonValue::Obj(vec![])),
        ]);
        let rendered = v.render();
        assert!(rendered.contains("\"id\": \"E1\""));
        assert!(rendered.contains("\"rows\": ["));
        assert!(rendered.contains("\"empty\": {}"));
        // Valid bracket balance (cheap sanity check).
        let opens = rendered.matches(['[', '{']).count();
        let closes = rendered.matches([']', '}']).count();
        assert_eq!(opens, closes);
    }
}
