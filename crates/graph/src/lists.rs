//! Color lists for list edge coloring instances.
//!
//! Section 2 of the paper defines the list edge coloring problem: every edge
//! `e` has a list `L_e ⊆ C = {1, ..., |C|}` and must output a color from its
//! list such that adjacent edges get distinct colors. The
//! *(degree+1)-list edge coloring* problem requires `|L_e| ≥ deg_G(e) + 1`,
//! and an instance has *slack* `S` if `|L_e| > S · deg(e)` for every edge
//! (the family `P(Δ̄, S, C)` of the paper).

use crate::graph::Graph;
use crate::ids::{Color, EdgeId};
use serde::{Deserialize, Serialize};

/// Per-edge color lists over a common color space `{0, ..., space_size - 1}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListAssignment {
    space_size: usize,
    lists: Vec<Vec<Color>>,
}

impl ListAssignment {
    /// Creates a list assignment from explicit per-edge lists.
    ///
    /// Lists are deduplicated and sorted; colors outside the color space are
    /// discarded.
    pub fn new(space_size: usize, lists: Vec<Vec<Color>>) -> Self {
        let lists = lists
            .into_iter()
            .map(|mut l| {
                l.retain(|c| *c < space_size);
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        ListAssignment { space_size, lists }
    }

    /// The standard `K`-edge-coloring instance: every edge gets the full list
    /// `{0, ..., k-1}` (Section 2: "the standard K-edge coloring is a special
    /// case of the list edge coloring problem").
    pub fn full_palette(graph: &Graph, k: usize) -> Self {
        let list: Vec<Color> = (0..k).collect();
        ListAssignment {
            space_size: k,
            lists: vec![list; graph.m()],
        }
    }

    /// The `(degree+1)`-list instance with the canonical lists
    /// `{0, ..., deg_G(e)}` for every edge, over the color space of size `Δ̄+1`.
    pub fn degree_plus_one(graph: &Graph) -> Self {
        let space = graph.max_edge_degree() + 1;
        let lists = graph
            .edges()
            .map(|e| (0..=graph.edge_degree(e)).collect())
            .collect();
        ListAssignment {
            space_size: space,
            lists,
        }
    }

    /// Size of the global color space `|C|`.
    #[inline]
    pub fn space_size(&self) -> usize {
        self.space_size
    }

    /// Number of edges with a list.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Returns `true` if there are no lists.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The list of edge `e` (sorted, deduplicated).
    #[inline]
    pub fn list(&self, e: EdgeId) -> &[Color] {
        &self.lists[e.index()]
    }

    /// The size of the list of edge `e`.
    #[inline]
    pub fn list_size(&self, e: EdgeId) -> usize {
        self.lists[e.index()].len()
    }

    /// Returns `true` if `c` is in the list of `e`.
    pub fn contains(&self, e: EdgeId, c: Color) -> bool {
        self.lists[e.index()].binary_search(&c).is_ok()
    }

    /// Removes a color from the list of `e` (used when an adjacent edge takes
    /// that color). Returns `true` if the color was present.
    pub fn remove(&mut self, e: EdgeId, c: Color) -> bool {
        match self.lists[e.index()].binary_search(&c) {
            Ok(pos) => {
                self.lists[e.index()].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Replaces the list of `e`.
    pub fn set_list(&mut self, e: EdgeId, mut list: Vec<Color>) {
        list.retain(|c| *c < self.space_size);
        list.sort_unstable();
        list.dedup();
        self.lists[e.index()] = list;
    }

    /// The fraction `λ_e` of the list of `e` that falls in the first half of
    /// the color range `[lo, hi)` split at `mid`, i.e.
    /// `|L_e ∩ [lo, mid)| / |L_e ∩ [lo, hi)|`. Returns 0.5 for empty lists.
    ///
    /// This is the quantity the LOCAL algorithm of Section 7 uses to decide
    /// how to split each edge between the two halves of the color space.
    pub fn red_fraction(&self, e: EdgeId, lo: Color, mid: Color, hi: Color) -> f64 {
        let list = &self.lists[e.index()];
        let total = list.iter().filter(|c| **c >= lo && **c < hi).count();
        if total == 0 {
            return 0.5;
        }
        let red = list.iter().filter(|c| **c >= lo && **c < mid).count();
        red as f64 / total as f64
    }

    /// Number of colors of `e`'s list inside `[lo, hi)`.
    pub fn count_in_range(&self, e: EdgeId, lo: Color, hi: Color) -> usize {
        self.lists[e.index()]
            .iter()
            .filter(|c| **c >= lo && **c < hi)
            .count()
    }

    /// The slack of edge `e` relative to a degree `deg`: `|L_e| / max(deg, 1)`.
    pub fn slack(&self, e: EdgeId, deg: usize) -> f64 {
        self.list_size(e) as f64 / deg.max(1) as f64
    }

    /// The minimum slack `min_e |L_e| / deg_G(e)` over all edges with positive
    /// degree; `f64::INFINITY` if every edge has degree 0.
    pub fn min_slack(&self, graph: &Graph) -> f64 {
        let mut best = f64::INFINITY;
        for e in graph.edges() {
            let d = graph.edge_degree(e);
            if d > 0 {
                best = best.min(self.list_size(e) as f64 / d as f64);
            }
        }
        best
    }

    /// Returns `true` if the instance satisfies the `(degree+1)` condition
    /// `|L_e| ≥ deg_G(e) + 1` for every edge.
    pub fn is_degree_plus_one(&self, graph: &Graph) -> bool {
        graph
            .edges()
            .all(|e| self.list_size(e) > graph.edge_degree(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn full_palette_lists() {
        let g = path4();
        let lists = ListAssignment::full_palette(&g, 5);
        assert_eq!(lists.space_size(), 5);
        for e in g.edges() {
            assert_eq!(lists.list_size(e), 5);
            assert!(lists.contains(e, 0));
            assert!(lists.contains(e, 4));
            assert!(!lists.contains(e, 5));
        }
    }

    #[test]
    fn degree_plus_one_instance() {
        let g = path4();
        let lists = ListAssignment::degree_plus_one(&g);
        assert!(lists.is_degree_plus_one(&g));
        // middle edge has edge degree 2 so its list must have >= 3 colors
        assert_eq!(lists.list_size(EdgeId::new(1)), 3);
        assert_eq!(lists.space_size(), g.max_edge_degree() + 1);
    }

    #[test]
    fn new_deduplicates_sorts_and_clips() {
        let lists = ListAssignment::new(4, vec![vec![3, 1, 3, 0, 9]]);
        assert_eq!(lists.list(EdgeId::new(0)), &[0, 1, 3]);
    }

    #[test]
    fn remove_and_contains() {
        let mut lists = ListAssignment::new(10, vec![vec![1, 2, 3]]);
        assert!(lists.remove(EdgeId::new(0), 2));
        assert!(!lists.remove(EdgeId::new(0), 2));
        assert!(!lists.contains(EdgeId::new(0), 2));
        assert_eq!(lists.list_size(EdgeId::new(0)), 2);
    }

    #[test]
    fn red_fraction_and_range_counts() {
        let lists = ListAssignment::new(10, vec![vec![0, 1, 2, 7, 8, 9]]);
        let e = EdgeId::new(0);
        assert_eq!(lists.count_in_range(e, 0, 5), 3);
        assert_eq!(lists.count_in_range(e, 5, 10), 3);
        let lambda = lists.red_fraction(e, 0, 5, 10);
        assert!((lambda - 0.5).abs() < 1e-12);
        // skewed range
        let lambda_low = lists.red_fraction(e, 0, 2, 10);
        assert!((lambda_low - 2.0 / 6.0).abs() < 1e-12);
        // empty range defaults to 0.5
        let lists2 = ListAssignment::new(10, vec![vec![]]);
        assert_eq!(lists2.red_fraction(e, 0, 5, 10), 0.5);
    }

    #[test]
    fn slack_computations() {
        let g = path4();
        let lists = ListAssignment::full_palette(&g, 6);
        // middle edge has degree 2, end edges degree 1
        assert!((lists.slack(EdgeId::new(1), 2) - 3.0).abs() < 1e-12);
        assert!((lists.min_slack(&g) - 3.0).abs() < 1e-12);
        let single = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let l2 = ListAssignment::full_palette(&single, 1);
        assert_eq!(l2.min_slack(&single), f64::INFINITY);
    }

    #[test]
    fn set_list_replaces() {
        let g = path4();
        let mut lists = ListAssignment::full_palette(&g, 4);
        lists.set_list(EdgeId::new(0), vec![9, 2, 2, 1]);
        assert_eq!(lists.list(EdgeId::new(0)), &[1, 2]);
    }
}
