//! The synchronous-round network: the orchestrated execution layer.
//!
//! A [`Network`] wraps a graph and provides the primitive the LOCAL/CONGEST
//! models are built on: one synchronous round in which every node sends one
//! message along each incident edge it chooses and receives the messages sent
//! to it. The network charges rounds, counts messages and bits, and checks
//! the CONGEST bandwidth limit.
//!
//! Algorithms written against this layer express each communication round
//! explicitly (via [`Network::exchange`] or [`Network::broadcast`]), so the
//! round counts reported in the experiments are exactly the number of
//! `exchange`/`broadcast` calls plus explicitly charged sub-protocol rounds.

use crate::metrics::Metrics;
use crate::model::Model;
use crate::payload::Payload;
use distgraph::{EdgeId, Graph, NodeId};

/// A message received by a node in a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The node that sent the message.
    pub from: NodeId,
    /// The edge over which it arrived.
    pub edge: EdgeId,
    /// The payload.
    pub msg: M,
}

/// Per-node inboxes produced by one round of communication.
#[derive(Debug, Clone)]
pub struct Mailboxes<M> {
    boxes: Vec<Vec<Incoming<M>>>,
}

impl<M> Mailboxes<M> {
    /// The messages received by node `v` this round.
    pub fn inbox(&self, v: NodeId) -> &[Incoming<M>] {
        &self.boxes[v.index()]
    }

    /// Total number of messages delivered.
    pub fn total(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }

    /// Consumes the mailboxes and returns the per-node vectors.
    pub fn into_inner(self) -> Vec<Vec<Incoming<M>>> {
        self.boxes
    }
}

/// A synchronous-round communication network over a graph.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    model: Model,
    metrics: Metrics,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph` under the given model.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        Network {
            graph,
            model,
            metrics: Metrics::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The communication model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Number of rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Executes one synchronous round: for every node, `outgoing` returns the
    /// list of `(edge, message)` pairs the node sends; each message is
    /// delivered to the other endpoint of the edge.
    ///
    /// # Panics
    ///
    /// Panics if a node sends over an edge it is not incident to, or sends two
    /// messages over the same edge in one round.
    pub fn exchange<M: Payload>(
        &mut self,
        mut outgoing: impl FnMut(NodeId) -> Vec<(EdgeId, M)>,
    ) -> Mailboxes<M> {
        self.metrics.rounds += 1;
        let limit = self.model.bandwidth_limit();
        let mut boxes: Vec<Vec<Incoming<M>>> = vec![Vec::new(); self.graph.n()];
        for v in self.graph.nodes() {
            let sends = outgoing(v);
            let mut used: Vec<EdgeId> = Vec::with_capacity(sends.len());
            for (edge, msg) in sends {
                assert!(
                    self.graph.is_endpoint(edge, v),
                    "{v} attempted to send over non-incident edge {edge}"
                );
                assert!(
                    !used.contains(&edge),
                    "{v} sent two messages over {edge} in a single round"
                );
                used.push(edge);
                self.metrics
                    .record_message(msg.encoded_bits() as u64, limit);
                let target = self.graph.other_endpoint(edge, v);
                boxes[target.index()].push(Incoming { from: v, edge, msg });
            }
        }
        Mailboxes { boxes }
    }

    /// One round in which every node sends the same message to all neighbors.
    pub fn broadcast<M: Payload>(&mut self, mut msg_of: impl FnMut(NodeId) -> M) -> Mailboxes<M> {
        let graph = self.graph;
        self.exchange(|v| {
            let msg = msg_of(v);
            graph
                .neighbors(v)
                .iter()
                .map(|nb| (nb.edge, msg.clone()))
                .collect()
        })
    }

    /// Charges `r` additional rounds without moving data. Used by composed
    /// algorithms to account for sub-protocols whose messages are simulated
    /// analytically (the accompanying message/bit counts can be added with
    /// [`Network::absorb_sequential`] or [`Network::charge_messages`]).
    pub fn charge_rounds(&mut self, r: u64) {
        self.metrics.rounds += r;
    }

    /// Records `count` messages of `bits_each` bits without delivering data.
    /// Used by composed algorithms whose inner sub-protocols are simulated
    /// analytically but whose bandwidth should still be accounted (and checked
    /// against the CONGEST limit).
    pub fn charge_messages(&mut self, count: u64, bits_each: u64) {
        if count == 0 {
            return;
        }
        self.metrics.messages += count;
        self.metrics.total_bits += count * bits_each;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits_each);
        if let Some(limit) = self.model.bandwidth_limit() {
            if bits_each > limit {
                self.metrics.congest_violations += count;
            }
        }
    }

    /// Adds the cost of a sub-execution that ran sequentially after the work
    /// recorded so far (e.g. a recursive call on a subgraph).
    pub fn absorb_sequential(&mut self, child: &Metrics) {
        self.metrics.absorb_sequential(child);
    }

    /// Adds the cost of sub-executions that ran in parallel with each other
    /// (rounds advance by the maximum of the children).
    pub fn absorb_parallel(&mut self, children: &[Metrics]) {
        self.metrics.absorb_parallel(children);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    #[test]
    fn broadcast_delivers_to_all_neighbors() {
        let g = generators::cycle(5);
        let mut net = Network::new(&g, Model::Local);
        let mail = net.broadcast(|v| v.index() as u64);
        assert_eq!(net.rounds(), 1);
        assert_eq!(mail.total(), 2 * g.m());
        for v in g.nodes() {
            let inbox = mail.inbox(v);
            assert_eq!(inbox.len(), 2);
            for incoming in inbox {
                assert_eq!(incoming.msg, incoming.from.index() as u64);
                assert!(g.is_endpoint(incoming.edge, v));
            }
        }
    }

    #[test]
    fn exchange_counts_bits_and_rounds() {
        let g = generators::path(3);
        let mut net = Network::new(&g, Model::Local);
        // only node 0 sends, over its single incident edge
        let mail = net.exchange(|v| {
            if v.index() == 0 {
                vec![(g.incident_edges(v).next().unwrap(), 255u64)]
            } else {
                vec![]
            }
        });
        assert_eq!(net.rounds(), 1);
        assert_eq!(mail.total(), 1);
        let metrics = net.metrics();
        assert_eq!(metrics.messages, 1);
        assert_eq!(metrics.total_bits, 8);
        assert_eq!(metrics.max_message_bits, 8);
        assert_eq!(mail.inbox(NodeId::new(1)).len(), 1);
        assert_eq!(mail.inbox(NodeId::new(2)).len(), 0);
    }

    #[test]
    fn congest_violations_are_flagged() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Congest { bandwidth_bits: 4 });
        net.broadcast(|_| vec![1u64; 10]); // far more than 4 bits
        assert!(net.metrics().congest_violations > 0);
    }

    #[test]
    fn local_never_flags_violations() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.broadcast(|_| vec![1u64; 1000]);
        assert_eq!(net.metrics().congest_violations, 0);
    }

    #[test]
    #[should_panic(expected = "non-incident")]
    fn sending_over_foreign_edge_panics() {
        let g = generators::path(4);
        let mut net = Network::new(&g, Model::Local);
        // node 0 tries to send over edge 2 = (2,3)
        net.exchange(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(2), 1u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn sending_twice_over_same_edge_panics() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.exchange(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(0), 1u32), (EdgeId::new(0), 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn charge_and_absorb() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.charge_rounds(5);
        let child = Metrics {
            rounds: 3,
            messages: 2,
            total_bits: 10,
            max_message_bits: 6,
            congest_violations: 0,
        };
        net.absorb_sequential(&child);
        net.absorb_parallel(&[
            child,
            Metrics {
                rounds: 9,
                ..Metrics::default()
            },
        ]);
        assert_eq!(net.rounds(), 5 + 3 + 9);
        assert_eq!(net.metrics().messages, 4);
    }
}
