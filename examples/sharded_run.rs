//! The sharded partition/exchange substrate, end to end: partition a graph,
//! inspect the quality report, run a full coloring under
//! `ExecutionPolicy::Sharded`, and confirm bit-identity with the sequential
//! engine plus the measured cross-shard traffic.
//!
//! Run with `cargo run --release --example sharded_run`. Expected output
//! (deterministic — seeds and the partitioner are fixed):
//!
//! ```text
//! graph: grid_torus(40x25) — n = 1000, m = 2000, Δ = 4
//! partition into 4 shards: cut fraction 0.101, balance factor 1.002,
//!     owned edges per shard = [501, 501, 501, 497]
//! boundary edges: 201 total; shard pair (0,1) carries 52 of them
//! sequential coloring: 6 colors, 46 rounds
//! sharded coloring:    identical = true (same colors, rounds, metrics)
//! cross-shard traffic: 18492 messages, ≈ 20 KiB over 46 rounds
//! ```
//!
//! (Numbers above are from the fixed seed in this file; the
//! `identical = true` line is the contract, asserted below.)

use distgraph::generators;
use distshard::{bfs_partition, ShardedGraph};
use distsim::{ExecutionPolicy, IdAssignment, Model, Network};
use edgecolor::{color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};

fn main() {
    // A 40×25 grid torus: 1000 nodes, exactly 2000 edges, Δ = 4 — the same
    // family the million-edge SHARD bench runs on, scaled down.
    let graph = generators::grid_torus(40, 25);
    let ids = IdAssignment::scattered(graph.n(), 7);
    println!(
        "graph: grid_torus(40x25) — n = {}, m = {}, Δ = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    // Stage 1: partition. The BFS-grown partitioner balances *edge* mass
    // (every shard owns at most ⌈m/k⌉ + Δ edges) and keeps the cut small on
    // mesh-like topologies.
    let shards = 4;
    let partition = bfs_partition(&graph, shards);
    let report = partition.report(&graph);
    println!(
        "partition into {} shards: cut fraction {:.3}, balance factor {:.3},\n    owned edges per shard = {:?}",
        report.shards, report.cut_fraction, report.balance_factor, report.shard_owned_edges
    );

    // Stage 2: the boundary structure — which edges (and therefore which
    // messages) must cross between each pair of shards.
    let sharded = ShardedGraph::new(&graph, partition);
    println!(
        "boundary edges: {} total; shard pair (0,1) carries {} of them",
        sharded.cut_edges(),
        sharded.boundary_edges(0, 1).len()
    );

    // Stage 3: run the full Theorem 1.1 coloring once sequentially and once
    // on the sharded substrate. The contract is bit-identity: same coloring,
    // same metrics, at any shard/thread count.
    let params = ColoringParams::new(0.5);
    let sequential = color_edges_local(&graph, &ids, &params).expect("valid instance");
    println!(
        "sequential coloring: {} colors, {} rounds",
        sequential.coloring.palette_size(),
        sequential.metrics.rounds
    );

    let sharded_params = params.with_policy(ExecutionPolicy::sharded(shards, 2));
    let shard_run = color_edges_local(&graph, &ids, &sharded_params).expect("valid instance");
    let identical =
        shard_run.coloring == sequential.coloring && shard_run.metrics == sequential.metrics;
    assert!(identical, "sharded run diverged from the sequential engine");
    check_proper_edge_coloring(&graph, &shard_run.coloring).assert_ok();
    check_complete(&graph, &shard_run.coloring).assert_ok();
    println!("sharded coloring:    identical = {identical} (same colors, rounds, metrics)");

    // Stage 4: observability. Drive the same number of broadcast rounds
    // through a sharded Network to see what actually crosses shards — only
    // boundary messages, one coalesced buffer per shard pair per round.
    let mut net = Network::with_policy(&graph, Model::Local, ExecutionPolicy::sharded(shards, 2));
    for _ in 0..sequential.metrics.rounds {
        net.broadcast(|v| v.index() as u64);
    }
    let state = net.shard_state().expect("sharded rounds ran");
    let stats = state.router_stats();
    println!(
        "cross-shard traffic: {} messages, ≈ {} KiB over {} rounds",
        stats.cross_messages,
        (stats.cross_bits / 8) / 1024,
        stats.rounds
    );
}
