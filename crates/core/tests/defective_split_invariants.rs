//! Property tests for the degree-reduction contract of the defective-split
//! recursion (Theorem 1.1's outer loop, DESIGN.md §"Degree reduction"): each
//! outer iteration carves the uncolored residual with a defective 4-coloring
//! and colors the cross-class bipartite pieces, so the residual max degree
//! must *strictly* decrease level over level. The Δ≥16 round blowup fixed in
//! docs/ROUNDS.md was exactly this invariant failing silently — the sweep
//! oscillated, no edges were colored, and the recursion re-ran the same
//! level until the iteration cap. These tests pin the invariant on random
//! irregular graphs so a regression fails loudly and immediately.

use distgraph::{Graph, VertexColoring};
use distsim::{IdAssignment, Model, Network};
use edgecolor::defective_vertex::defective_four_coloring;
use edgecolor::linial::linial_coloring;
use edgecolor::{color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};
use proptest::prelude::*;

/// A random irregular graph: a sprinkling of random edges plus a few hub
/// nodes wired to many others, so degrees spread far from regular and the
/// max degree clears the split cutoff.
fn arb_irregular_graph() -> impl Strategy<Value = Graph> {
    (12usize..40, 2usize..5).prop_flat_map(|(n, hubs)| {
        let edges = proptest::collection::vec((0..n, 0..n), n..(5 * n));
        let hub_spokes = proptest::collection::vec(0..n, hubs * (n / 2));
        (edges, hub_spokes).prop_map(move |(raw, spokes)| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            let mut push = |a: usize, b: usize| {
                let (a, b) = (a.min(b), a.max(b));
                if a != b && seen.insert((a, b)) {
                    edges.push((a, b));
                }
            };
            for (a, b) in raw {
                push(a, b);
            }
            for (i, s) in spokes.into_iter().enumerate() {
                push(i % hubs, s);
            }
            Graph::from_edges(n, &edges).expect("deduplicated simple edges")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every non-fallback outer iteration strictly decreases the residual
    /// max edge degree, and the per-level degrees form a strictly
    /// decreasing chain. A plateau here is the signature of the ROUNDS.md
    /// blowup: the recursion spinning on a level it cannot contract.
    #[test]
    fn defective_split_strictly_decreases_level_degree(graph in arb_irregular_graph(), seed in 0u64..500) {
        // A small cutoff forces the recursion to actually run levels on
        // these modest proptest-sized graphs (the default 16 would send
        // most of them straight to the greedy finisher).
        let params = ColoringParams {
            low_degree_cutoff: 4,
            ..ColoringParams::new(0.5)
        };
        let ids = IdAssignment::scattered(graph.n(), seed);
        let outcome = color_edges_local(&graph, &ids, &params).expect("valid instance");
        check_proper_edge_coloring(&graph, &outcome.coloring).assert_ok();
        check_complete(&graph, &outcome.coloring).assert_ok();

        let levels: Vec<_> = outcome
            .ledger
            .entries()
            .iter()
            .filter(|e| e.stage == "outer-iter")
            .collect();
        let mut prev_degree: Option<usize> = None;
        for entry in &levels {
            if entry.fallback {
                // A stalled level is allowed only as the *last* level: the
                // stall guard must break to the greedy finisher, never
                // re-run the recursion on an uncontracted residual.
                prop_assert!(
                    std::ptr::eq(*entry, *levels.last().unwrap()),
                    "fallback level at depth {} is not the last level",
                    entry.depth
                );
                continue;
            }
            prop_assert!(
                entry.defect_ratio < 1.0,
                "depth {} did not contract: Δ_level {} × ratio {:.3}",
                entry.depth,
                entry.delta_level,
                entry.defect_ratio
            );
            if let Some(prev) = prev_degree {
                prop_assert!(
                    entry.delta_level < prev,
                    "Δ_level went {} → {} between levels (must strictly decrease)",
                    prev,
                    entry.delta_level
                );
            }
            prev_degree = Some(entry.delta_level);
        }
    }

    /// Lemma 6.2 on irregular graphs: the defective 4-coloring's
    /// monochromatic degree stays within `εΔ + Δ/2`, strictly below Δ — the
    /// split makes progress on every graph, not just the regular benchmark
    /// ones.
    #[test]
    fn defective_four_coloring_defect_is_below_max_degree(graph in arb_irregular_graph(), seed in 0u64..500) {
        let delta = graph.max_degree();
        // The hub construction makes Δ < 4 nearly impossible; skip the
        // degenerate case rather than assert on it (the stand-in has no
        // prop_assume).
        if delta < 4 {
            return Ok(());
        }
        let eps = 0.25;
        let ids = IdAssignment::scattered(graph.n(), seed);
        let mut net = Network::new(&graph, Model::Local);
        let linial = linial_coloring(&graph, &ids, &mut net);
        let base = VertexColoring::from_vec(linial.coloring.as_slice().to_vec());
        let classes = defective_four_coloring(&graph, &base, linial.palette, eps, &mut net);
        let bound = eps * delta as f64 + (delta / 2) as f64;
        for v in graph.nodes() {
            let own = classes.color(v);
            let defect = graph
                .neighbors(v)
                .iter()
                .filter(|nb| classes.color(nb.node) == own)
                .count();
            prop_assert!(
                defect as f64 <= bound,
                "node {} has monochromatic degree {} > Lemma 6.2 bound {:.1} (Δ = {})",
                v.index(),
                defect,
                bound,
                delta
            );
        }
    }
}
