//! # edgecolor
//!
//! A reproduction of the algorithms of *Distributed Edge Coloring in Time
//! Polylogarithmic in Δ* (Balliu, Brandt, Kuhn, Olivetti; PODC 2022).
//!
//! The crate implements, on top of the [`distgraph`] graph substrate and the
//! [`distsim`] LOCAL/CONGEST round simulator:
//!
//! * the **generalized token dropping game** and its distributed solver
//!   (Section 4, Theorem 4.3) — [`token_dropping`];
//! * **generalized balanced edge orientations** (Definition 5.2, Theorem 5.6)
//!   — [`balanced_orientation`];
//! * **generalized defective 2-edge coloring** (Definition 5.1,
//!   Corollary 5.7) — [`defective_edge`];
//! * the **Linial-style `O(Δ²)`-coloring** in `O(log* n)` rounds and the
//!   **defective vertex coloring** substrate of \[11\] — [`linial`],
//!   [`defective_vertex`];
//! * the **`(2+ε)Δ`-edge coloring of 2-colored bipartite graphs**
//!   (Lemma 6.1) — [`bipartite_coloring`];
//! * the **`(8+ε)Δ`-edge coloring in CONGEST** (Theorem 1.2) —
//!   [`congest_coloring`];
//! * the **`(degree+1)`-list edge coloring in LOCAL** (Theorem 1.1) —
//!   [`list_coloring`];
//! * the **dynamic recoloring subsystem** — local repair of a maintained
//!   coloring after edge insert/delete batches, reusing the Theorem 1.1
//!   machinery on the affected subgraph only — [`recolor`];
//! * the **self-stabilizing repair layer** — detection of post-fault
//!   conflicts (stale colors after crashes, drops or severed shard links of
//!   a `distsim` fault plan) via the incremental `check_delta` certificate
//!   and healing through the same dirty-subgraph machinery — [`stabilize`].
//!
//! # Quick start
//!
//! ```
//! use distgraph::generators;
//! use distsim::IdAssignment;
//! use edgecolor::{color_edges_local, ColoringParams, ExecutionPolicy, ParamProfile};
//!
//! // A random 6-regular graph on 40 nodes.
//! let graph = generators::random_regular(40, 6, 7).unwrap();
//! let ids = IdAssignment::scattered(graph.n(), 1);
//! let outcome = color_edges_local(&graph, &ids, &ColoringParams::new(0.5))?;
//! assert!(outcome.coloring.is_complete());
//! assert!(outcome.coloring.palette_size() <= 2 * graph.max_degree() - 1);
//!
//! // The same run with the practical-profile parameters spelled out and the
//! // per-round node work executed on a 2-thread worker pool. Execution
//! // policies never change results — colorings, metrics and mailboxes are
//! // bit-identical to the sequential run — only wall-clock time.
//! let params = ColoringParams {
//!     profile: ParamProfile::Practical,
//!     ..ColoringParams::new(0.5)
//! }
//! .with_policy(ExecutionPolicy::parallel(2));
//! let parallel = color_edges_local(&graph, &ids, &params)?;
//! assert_eq!(parallel.coloring, outcome.coloring);
//! assert_eq!(parallel.metrics, outcome.metrics);
//! # Ok::<(), edgecolor::ColoringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balanced_orientation;
pub mod bipartite_coloring;
pub mod congest_coloring;
pub mod defective_edge;
pub mod defective_vertex;
pub mod error;
pub mod greedy_finish;
pub mod linial;
pub mod list_coloring;
pub mod params;
pub mod recolor;
pub mod stabilize;
pub mod token_dropping;

pub use congest_coloring::{color_congest, CongestColoringResult};
pub use distsim::ExecutionPolicy;
pub use error::ColoringError;
pub use list_coloring::{
    color_edges_local, default_palette, list_edge_coloring, ListColoringOutcome,
};
pub use params::{ColoringParams, OrientationParams, ParamProfile};
pub use recolor::{Recoloring, RepairReport};
pub use stabilize::{SelfStabilizing, StabilizationReport};
