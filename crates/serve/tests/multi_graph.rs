//! Multi-graph serving battery: one daemon, several tenants, pipelined
//! connections.
//!
//! Three properties pin the v2 registry design:
//!
//! 1. **Isolation + determinism**: clients spread across two tenants
//!    mutate concurrently; afterwards each tenant's coloring is
//!    checker-valid and **bit-identical** to a sequential replay of *its
//!    own* coalesced batch log — tenant logs never bleed into each other.
//! 2. **Out-of-order completion**: on one pipelined connection, a slow
//!    flush on graph 0 and a fast lookup on graph 1 complete out of
//!    submission order, proven by request-id tagging. (Each round's flush
//!    repairs a freshly admitted batch pile — milliseconds of work against
//!    a microsecond lookup — so even on one CPU at least one of the rounds
//!    must invert; we assert exactly that, not a race-y all-of-them.)
//! 3. **v1 fallback**: a handshake-less connection keeps full v1 semantics
//!    against graph 0 of the same daemon that is serving v2 tenants.

use distgraph::{generators, DynamicGraph};
use distserve::wire::{LookupOutcome, RejectCode, Request, Response};
use distserve::{
    Client, ClientBuilder, DaemonHandle, PipelinedClient, Rejection, ServeConfig, ServerCore,
    Tenant,
};
use edgecolor::Recoloring;
use edgecolor_verify::{check_complete, check_delta, check_proper_edge_coloring};
use std::time::Duration;

/// Diagonal neighbor on an `rows × cols` torus — never a torus edge, so
/// inserting `(a, diag(a))` is always admissible exactly once.
fn diag(a: usize, rows: usize, cols: usize) -> usize {
    let (r, c) = (a / cols, a % cols);
    ((r + 1) % rows) * cols + (c + 1) % cols
}

fn submit_admitted(client: &mut Client, delete: &[u64], insert: &[(u32, u32)]) {
    loop {
        match client
            .submit(delete.to_vec(), insert.to_vec())
            .expect("transport stays up")
        {
            Ok(_) => return,
            Err(Rejection {
                code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                ..
            }) => std::thread::sleep(Duration::from_micros(200)),
            Err(r) => panic!("admissible batch rejected: {r}"),
        }
    }
}

/// Replays a tenant's coalesced batch log sequentially through a fresh
/// session and asserts the final coloring matches the served one bit for
/// bit (the same strong property `tests/concurrency.rs` pins for the
/// single-graph daemon).
fn assert_replay_bit_identical(tenant: &Tenant, rows: usize, cols: usize) {
    let st = tenant.state_snapshot();
    check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
    check_complete(st.dynamic().graph(), st.coloring()).assert_ok();

    let mut dg = DynamicGraph::from_graph(generators::grid_torus(rows, cols));
    let max_deg0 = dg.graph().max_degree();
    let ids = st.ids().clone();
    let params = *tenant.params();
    let budget = edgecolor::default_palette(max_deg0 + tenant.config().headroom);
    let (mut rec, _) = Recoloring::with_budget(&dg, &ids, &params, budget).expect("replay boot");
    for (epoch, batch) in &tenant.batch_log() {
        assert_eq!(*epoch, 1, "no swaps in this battery");
        let diff = dg.apply(batch).expect("logged batches replay cleanly");
        let report = rec
            .repair(&dg, &diff, &ids, &params)
            .expect("replay repair");
        check_delta(dg.graph(), rec.coloring(), &report.touched, rec.palette()).assert_ok();
    }
    assert_eq!(dg.graph().m(), st.dynamic().graph().m());
    assert_eq!(
        rec.coloring(),
        st.coloring(),
        "tenant diverged from sequential replay of its own batch log"
    );
}

fn spawn_two_tenants(dims: [(usize, usize); 2], tick_interval_ms: Option<u64>) -> DaemonHandle {
    let config = ServeConfig {
        tick_interval_ms,
        ..ServeConfig::default()
    };
    let tenants = dims
        .iter()
        .enumerate()
        .map(|(k, &(r, c))| {
            Tenant::new(
                format!("t{k}"),
                generators::grid_torus(r, c),
                config.clone(),
            )
            .expect("boot tenant")
        })
        .collect();
    DaemonHandle::spawn(ServerCore::from_tenants(tenants)).expect("bind")
}

/// Property 1: concurrent clients across two tenants; each tenant's final
/// coloring is checker-valid and bit-identical to a sequential replay of
/// its own batch log.
#[test]
fn tenants_isolate_and_replay_bit_identically() {
    const DIMS: [(usize, usize); 2] = [(10, 10), (8, 8)];
    const CLIENTS_PER_GRAPH: usize = 2;
    const OPS: usize = 30;
    let daemon = spawn_two_tenants(DIMS, Some(1));
    let addr = daemon.addr();

    std::thread::scope(|s| {
        for (gid, &(rows, cols)) in DIMS.iter().enumerate() {
            for slot in 0..CLIENTS_PER_GRAPH {
                s.spawn(move || {
                    let (n, m0) = (rows * cols, 2 * rows * cols);
                    let mut client = Client::connect(addr).expect("connect");
                    client.set_graph(gid as u32);
                    let (mut anchor, mut dead) = (slot, slot);
                    for i in 0..OPS {
                        let probe = ((slot * 31 + i * 7) % m0) as u64;
                        let _ = client.lookup(probe).expect("lookup");
                        if i % 2 == 0 && anchor < n {
                            submit_admitted(
                                &mut client,
                                &[],
                                &[(anchor as u32, diag(anchor, rows, cols) as u32)],
                            );
                            anchor += CLIENTS_PER_GRAPH;
                        } else if dead < m0 {
                            submit_admitted(&mut client, &[dead as u64], &[]);
                            dead += CLIENTS_PER_GRAPH;
                        }
                    }
                });
            }
        }
    });

    // Drain both tenants, then audit each independently.
    let mut client = Client::connect(addr).expect("connect");
    for gid in 0..DIMS.len() {
        client.set_graph(gid as u32);
        assert_eq!(client.flush().expect("flush").epoch, 1);
    }
    let core = daemon.core().clone();
    daemon.shutdown();
    assert_eq!(core.internal_errors(), 0);
    for (gid, &(rows, cols)) in DIMS.iter().enumerate() {
        let tenant = &core.tenants()[gid];
        assert_eq!(tenant.queue_depth(), 0, "flush left tenant {gid} behind");
        assert!(
            !tenant.batch_log().is_empty(),
            "tenant {gid} saw no writes at all"
        );
        assert_replay_bit_identical(tenant, rows, cols);
    }
}

/// Property 2: out-of-order completion across graphs on one pipelined
/// connection, demonstrated by request-id tagging.
#[test]
fn pipelined_responses_complete_out_of_order_across_graphs() {
    const ROUNDS: usize = 5;
    const INSERTS_PER_ROUND: usize = 20;
    // Manual ticks only: admissions pile up until the flush repairs them
    // all at once, making the graph-0 flush reliably slower than a
    // graph-1 lookup.
    let daemon = spawn_two_tenants([(12, 12), (6, 6)], None);
    let mut admitter = Client::connect(daemon.addr()).expect("connect");
    let mut conn = PipelinedClient::connect(daemon.addr()).expect("connect pipelined");

    let (rows, cols, n) = (12usize, 12usize, 144usize);
    let mut anchor = 0usize;
    let mut inversions = 0usize;
    for _ in 0..ROUNDS {
        for _ in 0..INSERTS_PER_ROUND {
            assert!(anchor < n, "anchor budget exhausted");
            submit_admitted(
                &mut admitter,
                &[],
                &[(anchor as u32, diag(anchor, rows, cols) as u32)],
            );
            anchor += 1;
        }
        let slow = conn.send(0, &Request::Flush).expect("send flush");
        let fast = conn
            .send(1, &Request::Lookup { stable: 3 })
            .expect("send lookup");
        let (first_rid, first) = conn.recv_any().expect("first completion");
        let (second_rid, second) = conn.recv_any().expect("second completion");
        assert_eq!(
            [first_rid, second_rid]
                .iter()
                .collect::<std::collections::BTreeSet<_>>(),
            [slow.id(), fast.id()].iter().collect(),
            "both tickets answered exactly once"
        );
        for (rid, resp) in [(first_rid, &first), (second_rid, &second)] {
            if rid == slow.id() {
                assert!(matches!(resp, Response::Flushed { .. }), "got {resp:?}");
            } else {
                assert!(matches!(resp, Response::Color { .. }), "got {resp:?}");
            }
        }
        if first_rid == fast.id() {
            inversions += 1; // the later-submitted lookup finished first
        }
    }
    assert!(
        inversions >= 1,
        "no out-of-order completion in {ROUNDS} rounds: pipelining is not \
         actually decoupling the graphs"
    );
    daemon.shutdown();
}

/// Property 3: handshake-less connections keep v1 semantics against graph
/// 0 of a daemon that is simultaneously serving v2 tenants.
#[test]
fn v1_fallback_serves_graph_zero_alongside_v2_tenants() {
    let daemon = spawn_two_tenants([(6, 6), (5, 5)], None);
    let addr = daemon.addr();

    // A v2 client writes to graph 1...
    let mut v2 = Client::connect(addr).expect("v2 connect");
    assert_eq!(v2.catalog().len(), 2);
    v2.set_graph(1);
    v2.submit(vec![], vec![(0, 6)])
        .expect("submit")
        .expect("admissible");
    assert_eq!(v2.flush().expect("flush").epoch, 1);

    // ...while a handshake-less v1 client works graph 0, full surface.
    let mut v1 = ClientBuilder::new().connect_v1(addr).expect("v1 connect");
    match v1.lookup(0).expect("lookup") {
        (LookupOutcome::Colored { .. }, 1, _) => {}
        other => panic!("v1 lookup answered {other:?}"),
    }
    v1.submit(vec![], vec![(0, 7)])
        .expect("submit")
        .expect("admissible");
    assert_eq!(v1.flush().expect("flush").epoch, 1);
    let m_v1 = v1.metrics().expect("metrics");

    // The v1 write landed on tenant 0 and only tenant 0; the v2 write on
    // tenant 1 and only tenant 1.
    let core = daemon.core();
    let t0 = core.tenants()[0].state_snapshot();
    let t1 = core.tenants()[1].state_snapshot();
    assert_eq!(t0.dynamic().graph().m(), 2 * 36 + 1);
    assert_eq!(t1.dynamic().graph().m(), 2 * 25 + 1);
    assert_eq!(m_v1.m, 2 * 36 + 1, "v1 metrics report graph 0");
    check_proper_edge_coloring(t0.dynamic().graph(), t0.coloring()).assert_ok();
    check_proper_edge_coloring(t1.dynamic().graph(), t1.coloring()).assert_ok();
    daemon.shutdown();
}
