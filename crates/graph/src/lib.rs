//! # distgraph
//!
//! Graph substrate for the reproduction of *Distributed Edge Coloring in Time
//! Polylogarithmic in Δ* (Balliu, Brandt, Kuhn, Olivetti; PODC 2022).
//!
//! The crate provides:
//!
//! * [`Graph`] — an undirected simple graph with dense node/edge identifiers,
//!   CSR adjacency, and line-graph degree queries (`deg_G(e)`, `Δ̄`);
//! * [`BipartiteGraph`] — a graph with a 2-coloring of its nodes, the input
//!   shape of the paper's Section 5 algorithms;
//! * [`Orientation`] — partial edge orientations with incrementally maintained
//!   indegrees (`x_v` in the paper);
//! * [`VertexColoring`], [`EdgeColoring`] — (partial) colorings with
//!   properness and defect measures;
//! * [`ListAssignment`] — per-edge color lists, slack and the `P(Δ̄, S, C)`
//!   instance family of Section 2;
//! * [`DynamicGraph`] — edge insert/delete batches over the CSR substrate
//!   with stable edge identities and per-batch diffs, the input layer of the
//!   dynamic recoloring subsystem;
//! * [`generators`] — deterministic graph generators for the experiments,
//!   including [`generators::UpdateStream`] mutation-scenario generators
//!   (churn, hub attack, sliding window) for the dynamic workloads.
//!
//! # Examples
//!
//! ```
//! use distgraph::{generators, ListAssignment};
//!
//! let bg = generators::regular_bipartite(8, 3, 42)?;
//! let g = bg.graph();
//! assert_eq!(g.max_degree(), 3);
//! // The canonical (degree+1)-list instance over the color space {0, ..., Δ̄}.
//! let lists = ListAssignment::degree_plus_one(g);
//! assert!(lists.is_degree_plus_one(g));
//! # Ok::<(), distgraph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod coloring;
mod dynamic;
mod error;
pub mod generators;
mod graph;
mod ids;
mod lists;
mod orientation;
mod reorder;

pub use bipartite::BipartiteGraph;
pub use coloring::{EdgeColoring, VertexColoring};
pub use dynamic::{BatchDiff, DynamicGraph, UpdateBatch};
pub use error::GraphError;
pub use graph::{Graph, Neighbor};
pub use ids::{Color, EdgeId, NodeId, Side};
pub use lists::ListAssignment;
pub use orientation::Orientation;
pub use reorder::{reorder_permutation, NodePermutation, ReorderStrategy};
