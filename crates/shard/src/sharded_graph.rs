//! The partitioned view of a graph: per-shard node/edge sets and the
//! boundary structure between shard pairs.

use crate::partition::Partition;
use distgraph::{EdgeId, Graph, NodeId};

/// A [`Graph`] split along a [`Partition`]: per-shard node lists (ascending),
/// per-shard owned-edge lists, and the symmetric boundary-edge sets between
/// every pair of shards.
///
/// The sharded execution engine (`distsim`'s `ExecutionPolicy::Sharded`) runs
/// each round's per-node work shard-locally over [`ShardedGraph::nodes`];
/// the boundary sets determine exactly which messages must cross shards and
/// therefore the cross-shard traffic the [`crate::ShardRouter`] carries.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    partition: Partition,
    /// Per shard, the node ids assigned to it, ascending.
    nodes: Vec<Vec<NodeId>>,
    /// Per shard, the edges it owns (see [`Partition::owner`]), ascending.
    owned_edges: Vec<Vec<EdgeId>>,
    /// Boundary edges per unordered shard pair `{a, b}` with `a < b`, indexed
    /// by `pair_index(a, b)`; each list is ascending.
    boundary: Vec<Vec<EdgeId>>,
    /// Total number of boundary (cut) edges.
    cut_edges: usize,
}

impl ShardedGraph {
    /// Builds the sharded view of `graph` along `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition covers a different number of nodes than
    /// `graph`.
    pub fn new(graph: &Graph, partition: Partition) -> Self {
        assert_eq!(
            partition.n(),
            graph.n(),
            "partition covers a different graph"
        );
        let k = partition.shards();
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for v in graph.nodes() {
            nodes[partition.shard_of(v)].push(v);
        }
        let mut owned_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
        let mut boundary: Vec<Vec<EdgeId>> = vec![Vec::new(); k * (k.saturating_sub(1)) / 2];
        let mut cut_edges = 0usize;
        for e in graph.edges() {
            let (u, v) = graph.endpoints(e);
            let (su, sv) = (partition.shard_of(u), partition.shard_of(v));
            owned_edges[su.min(sv)].push(e);
            if su != sv {
                cut_edges += 1;
                boundary[Self::pair_index_for(k, su.min(sv), su.max(sv))].push(e);
            }
        }
        ShardedGraph {
            partition,
            nodes,
            owned_edges,
            boundary,
            cut_edges,
        }
    }

    /// The underlying partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards `k`.
    pub fn shards(&self) -> usize {
        self.partition.shards()
    }

    /// The nodes of shard `s`, in ascending id order — the iteration order of
    /// the shard-local round execution.
    pub fn nodes(&self, s: usize) -> &[NodeId] {
        &self.nodes[s]
    }

    /// The edges owned by shard `s` (every edge is owned by exactly one
    /// shard), in ascending id order.
    pub fn owned_edges(&self, s: usize) -> &[EdgeId] {
        &self.owned_edges[s]
    }

    /// Total number of cut (boundary) edges across all shard pairs.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// The boundary edges between shards `a` and `b`: the edges with one
    /// endpoint in each. Symmetric by construction —
    /// `boundary_edges(a, b)` and `boundary_edges(b, a)` are the same slice —
    /// and empty for `a == b` (internal edges are not boundary edges).
    pub fn boundary_edges(&self, a: usize, b: usize) -> &[EdgeId] {
        if a == b {
            return &[];
        }
        &self.boundary[Self::pair_index_for(self.shards(), a.min(b), a.max(b))]
    }

    /// Dense index of the unordered pair `(a, b)` with `a < b` among the
    /// `k(k−1)/2` shard pairs.
    fn pair_index_for(k: usize, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < k);
        // Pairs are laid out row by row: (0,1), (0,2), …, (0,k−1), (1,2), …
        a * (2 * k - a - 1) / 2 + (b - a - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::bfs_partition;
    use distgraph::generators;

    #[test]
    fn pair_index_enumerates_all_pairs_densely() {
        for k in [2usize, 3, 4, 8] {
            let mut seen = vec![false; k * (k - 1) / 2];
            for a in 0..k {
                for b in (a + 1)..k {
                    let idx = ShardedGraph::pair_index_for(k, a, b);
                    assert!(!seen[idx], "pair ({a},{b}) collides at {idx} for k={k}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn owned_edges_partition_the_edge_set() {
        let g = generators::grid_torus(8, 6);
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, 4));
        let mut seen = vec![false; g.m()];
        for s in 0..4 {
            for &e in sharded.owned_edges(s) {
                assert!(!seen[e.index()], "{e} owned twice");
                seen[e.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some edge is owned by no shard");
    }

    #[test]
    fn boundary_sets_are_symmetric_and_cover_the_cut() {
        let g = generators::random_regular(48, 5, 7).unwrap();
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, 3));
        let mut cut = 0usize;
        for a in 0..3 {
            assert!(sharded.boundary_edges(a, a).is_empty());
            for b in (a + 1)..3 {
                let ab = sharded.boundary_edges(a, b);
                let ba = sharded.boundary_edges(b, a);
                assert_eq!(ab, ba, "boundary ({a},{b}) asymmetric");
                cut += ab.len();
                for &e in ab {
                    let (u, v) = g.endpoints(e);
                    let su = sharded.partition().shard_of(u);
                    let sv = sharded.partition().shard_of(v);
                    assert_eq!((su.min(sv), su.max(sv)), (a, b));
                }
            }
        }
        assert_eq!(cut, sharded.cut_edges());
    }

    #[test]
    fn shard_node_lists_are_ascending_and_cover_all_nodes() {
        let g = generators::power_law(120, 2.5, 12, 5);
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, 5));
        let mut total = 0usize;
        for s in 0..5 {
            let nodes = sharded.nodes(s);
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "shard {s} unsorted");
            total += nodes.len();
        }
        assert_eq!(total, g.n());
    }
}
