//! Self-stabilizing repair: detecting and healing post-fault conflicts in a
//! maintained edge coloring.
//!
//! The fault adversary of `distsim` ([`distsim::FaultPlan`]) can leave a
//! distributed coloring session in an inconsistent state: a node that
//! crashed or sat behind a severed shard link missed recoloring messages and
//! still holds a *stale* color, so two adjacent edges may now disagree with
//! the proper-coloring invariant. [`SelfStabilizing`] closes the loop:
//!
//! 1. **detect** — run [`edgecolor_verify::check_delta`] over the set of
//!    edges the faults may have touched (`O(|touched| · Δ)`, not `O(m)`);
//! 2. **uncolor** — strip the color of every edge implicated in a violation
//!    (both sides of a conflict, uncolored edges, out-of-palette edges);
//! 3. **repair** — rerun the paper's Theorem 1.1 list-coloring machinery on
//!    the dirty subgraph only, with residual lists, exactly like a dynamic
//!    repair batch ([`Recoloring::repair`]); the Lemma D.1 argument
//!    (`|L_e| ≥ deg_H(e) + 1` against a `2Δ − 1` palette) applies verbatim,
//!    because uncoloring edges only ever *grows* residual lists.
//!
//! The result is checker-equivalent to a from-scratch coloring of the same
//! graph — same proper/complete/palette guarantees — while touching only the
//! conflict neighborhood (`tests/self_stabilization.rs` pins this on the
//! generator matrix).
//!
//! Like everything else in the repair pipeline, stabilization is
//! deterministic: the same corruption (same [`distsim::FaultPlan`]-style seed) heals
//! to the same coloring under every
//! [`ExecutionPolicy`](distsim::ExecutionPolicy).

use crate::error::ColoringError;
use crate::params::ColoringParams;
use crate::recolor::{repair_within_palette, Recoloring};
use distgraph::{Color, DynamicGraph, EdgeId, Graph};
use distsim::{IdAssignment, Metrics};
use edgecolor_verify::{check_delta, Violation};

/// What one [`SelfStabilizing::stabilize`] call found and did.
#[derive(Debug, Clone)]
pub struct StabilizationReport {
    /// Violations found by the incremental detector over the suspect set.
    pub conflicts_found: usize,
    /// Edges whose colors were stripped and recomputed.
    pub repaired_edges: usize,
    /// Simulated execution cost of the repair pass (zero when the suspect
    /// set was clean).
    pub metrics: Metrics,
    /// The edges the stabilization rewrote — hand these to
    /// [`edgecolor_verify::check_delta`] to certify the result.
    pub touched: Vec<EdgeId>,
    /// `true` when this call widened detection to every edge of the graph
    /// (the [`SelfStabilizing::with_full_sweep_every`] escape hatch fired).
    pub full_sweep: bool,
}

impl StabilizationReport {
    /// `true` when the suspect set was already consistent and nothing was
    /// rewritten.
    pub fn was_clean(&self) -> bool {
        self.conflicts_found == 0
    }
}

/// A [`Recoloring`] session wrapped with fault detection and repair; see the
/// [module docs](self).
///
/// # Examples
///
/// ```
/// use distgraph::{generators, DynamicGraph};
/// use distsim::IdAssignment;
/// use edgecolor::{ColoringParams, Recoloring, SelfStabilizing};
/// use edgecolor_verify::{check_complete, check_proper_edge_coloring};
///
/// let dg = DynamicGraph::from_graph(generators::grid_torus(6, 6));
/// let ids = IdAssignment::scattered(dg.n(), 1);
/// let params = ColoringParams::new(0.5);
/// let (rec, _) = Recoloring::color_initial(&dg, &ids, &params)?;
/// let mut session = SelfStabilizing::new(rec);
///
/// // An adversary corrupts 5 seed-chosen edges (stale colors after faults).
/// let touched = session.inject_corruption(dg.graph(), 42, 5);
/// assert!(!touched.is_empty());
///
/// // Detect on the touched set only, then repair the dirty subgraph.
/// let report = session.stabilize(&dg, &touched, &ids, &params)?;
/// assert!(report.conflicts_found > 0);
/// check_proper_edge_coloring(dg.graph(), session.coloring()).assert_ok();
/// check_complete(dg.graph(), session.coloring()).assert_ok();
/// # Ok::<(), edgecolor::ColoringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SelfStabilizing {
    rec: Recoloring,
    stabilizations: u64,
    conflicts_total: u64,
    repaired_total: u64,
    full_sweep_every: Option<u64>,
}

impl SelfStabilizing {
    /// Wraps an existing recoloring session.
    pub fn new(rec: Recoloring) -> Self {
        SelfStabilizing {
            rec,
            stabilizations: 0,
            conflicts_total: 0,
            repaired_total: 0,
            full_sweep_every: None,
        }
    }

    /// Enables the periodic full-sweep escape hatch: every `period`-th
    /// [`stabilize`](SelfStabilizing::stabilize) call widens the suspect set
    /// to *all* edges of the graph, so a stale conflict strictly outside the
    /// reported fault neighborhood (the documented out-of-contract case of
    /// [`check_delta`]) is still detected and healed within `period` calls.
    ///
    /// The sweep costs one `O(m · Δ)` detection pass; the repair itself
    /// stays proportional to the conflicts actually found. Off by default —
    /// sessions that trust their suspect sets keep the incremental
    /// `O(|touched| · Δ)` bound on every call.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_full_sweep_every(mut self, period: u64) -> Self {
        assert!(period > 0, "full-sweep period must be positive");
        self.full_sweep_every = Some(period);
        self
    }

    /// The wrapped session.
    pub fn recoloring(&self) -> &Recoloring {
        &self.rec
    }

    /// The maintained coloring.
    pub fn coloring(&self) -> &distgraph::EdgeColoring {
        self.rec.coloring()
    }

    /// The palette budget of the wrapped session.
    pub fn palette(&self) -> usize {
        self.rec.palette()
    }

    /// `(stabilize calls, conflicts found, edges repaired)` over the
    /// session's lifetime.
    pub fn lifetime_stats(&self) -> (u64, u64, u64) {
        (
            self.stabilizations,
            self.conflicts_total,
            self.repaired_total,
        )
    }

    /// Deterministically corrupts exactly `min(count, m)` seed-chosen
    /// edges — the
    /// adversarial post-fault state where nodes hold stale colors: each
    /// picked edge's color is shifted within the palette (guaranteeing a
    /// *changed* color), and every third one is uncolored instead (a node
    /// that crashed before committing any color). Returns the corrupted
    /// edge set — the `suspects` input of [`SelfStabilizing::stabilize`].
    ///
    /// The same `(seed, count)` always corrupts the same edges the same
    /// way, so fault scenarios replay bit-identically.
    pub fn inject_corruption(&mut self, graph: &Graph, seed: u64, count: usize) -> Vec<EdgeId> {
        let m = graph.m();
        if m == 0 || count == 0 {
            return Vec::new();
        }
        let wanted = count.min(m);
        let palette = self.rec.palette();
        let coloring = self.rec.coloring_mut();
        let mut touched = Vec::with_capacity(wanted);
        let mut state = seed;
        let mut picked = std::collections::HashSet::new();
        let mut corrupt_one = |e: EdgeId, z: u64, picked_len: usize| {
            if picked_len.is_multiple_of(3) {
                coloring.unset(e);
            } else {
                let old = coloring.color(e).unwrap_or(0);
                let shift = 1 + (z >> 32) as usize % (palette.max(2) - 1);
                let stale: Color = (old + shift) % palette.max(1);
                coloring.set(e, stale);
            }
        };
        // SplitMix64 stream over the seed (the same primitive the fault
        // adversary's decisions hash with); already-picked edges are
        // skipped, and a bounded attempt budget keeps the draw cheap.
        for _ in 0..wanted * 4 {
            if touched.len() >= wanted {
                break;
            }
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let z = distsim::faults::splitmix64(state);
            let e = EdgeId::new((z % m as u64) as usize);
            if !picked.insert(e) {
                continue;
            }
            corrupt_one(e, z, picked.len());
            touched.push(e);
        }
        // Collision fallback (relevant when `count` approaches `m`, where
        // the bounded stream cannot cover every edge): walk the remaining
        // edges in index order — still a pure function of `(seed, count)`,
        // and now guaranteed to corrupt exactly `min(count, m)` edges.
        let mut next = 0usize;
        while touched.len() < wanted {
            let e = EdgeId::new(next);
            next += 1;
            if !picked.insert(e) {
                continue;
            }
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            corrupt_one(e, distsim::faults::splitmix64(state), picked.len());
            touched.push(e);
        }
        touched
    }

    /// Applies a mutation-batch repair to the wrapped session — a
    /// passthrough to [`Recoloring::repair`], so a long-lived owner (for
    /// example the serving daemon of `crates/serve`) can drive the whole
    /// maintain–detect–heal lifecycle through one handle: `repair` after
    /// every [`DynamicGraph::apply`], `stabilize` whenever faults are
    /// suspected.
    ///
    /// # Errors
    ///
    /// Propagates errors of the underlying coloring machinery.
    pub fn repair(
        &mut self,
        dg: &DynamicGraph,
        diff: &distgraph::BatchDiff,
        ids: &IdAssignment,
        params: &ColoringParams,
    ) -> Result<crate::recolor::RepairReport, ColoringError> {
        self.rec.repair(dg, diff, ids, params)
    }

    /// Detects conflicts in the `suspects` neighborhood and repairs them.
    ///
    /// `suspects` is the set of edges faults may have corrupted (for an
    /// injected corruption, the return value of
    /// [`SelfStabilizing::inject_corruption`]; for a faulty distributed run,
    /// the edges incident to crashed nodes or severed links). Per the
    /// [`check_delta`] contract, conflicts entirely *outside* the suspect
    /// neighborhood are out of scope — run the `O(m)` checkers for a full
    /// audit, or enable [`SelfStabilizing::with_full_sweep_every`] to fold
    /// that audit into the stabilization loop periodically.
    ///
    /// # Errors
    ///
    /// Propagates errors of the underlying coloring machinery.
    pub fn stabilize(
        &mut self,
        dg: &DynamicGraph,
        suspects: &[EdgeId],
        ids: &IdAssignment,
        params: &ColoringParams,
    ) -> Result<StabilizationReport, ColoringError> {
        let graph = dg.graph();
        self.stabilizations += 1;
        // The escape hatch: on every `period`-th call, detection runs over
        // the whole edge set so conflicts the caller's suspect set missed
        // cannot survive indefinitely.
        let full_sweep = self
            .full_sweep_every
            .is_some_and(|period| self.stabilizations.is_multiple_of(period));
        let swept: Vec<EdgeId>;
        let suspects: &[EdgeId] = if full_sweep {
            swept = graph.edges().collect();
            &swept
        } else {
            suspects
        };
        let detection = check_delta(graph, self.rec.coloring(), suspects, self.rec.palette());
        if detection.is_ok() {
            return Ok(StabilizationReport {
                conflicts_found: 0,
                repaired_edges: 0,
                metrics: Metrics::new(),
                touched: Vec::new(),
                full_sweep,
            });
        }

        // Uncolor every edge implicated in a violation. Stripping both sides
        // of a conflict keeps the repair symmetric (no arbitrary winner) and
        // only grows the residual lists the Lemma D.1 argument needs.
        let mut dirty: Vec<EdgeId> = Vec::new();
        for violation in detection.violations() {
            match violation {
                Violation::AdjacentEdgesShareColor { a, b, .. } => {
                    dirty.push(*a);
                    dirty.push(*b);
                }
                Violation::EdgeUncolored { edge } => dirty.push(*edge),
                Violation::TooManyColors { .. } => {}
                _ => {}
            }
        }
        // Out-of-palette colors carry no edge in the violation; strip every
        // suspect whose color breaks the budget.
        for &e in suspects {
            if self
                .rec
                .coloring()
                .color(e)
                .is_some_and(|c| c >= self.rec.palette())
            {
                dirty.push(e);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        let mut carried = self.rec.coloring().clone();
        for &e in &dirty {
            carried.unset(e);
        }

        let palette = self.rec.palette();
        let (healed, repair) = repair_within_palette(graph, carried, palette, ids, params)?;
        self.rec.replace_coloring(healed);
        self.conflicts_total += detection.violations().len() as u64;
        self.repaired_total += repair.repaired_edges as u64;
        Ok(StabilizationReport {
            conflicts_found: detection.violations().len(),
            repaired_edges: repair.repaired_edges,
            metrics: repair.metrics,
            touched: repair.touched,
            full_sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

    fn session(seed: u64) -> (DynamicGraph, IdAssignment, ColoringParams, SelfStabilizing) {
        let dg = DynamicGraph::from_graph(generators::grid_torus(8, 8));
        let ids = IdAssignment::scattered(dg.n(), seed);
        let params = ColoringParams::new(0.5);
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        (dg, ids, params, SelfStabilizing::new(rec))
    }

    #[test]
    fn clean_suspect_set_is_a_no_op() {
        let (dg, ids, params, mut session) = session(1);
        let before = session.coloring().clone();
        let suspects: Vec<EdgeId> = dg.graph().edges().take(10).collect();
        let report = session.stabilize(&dg, &suspects, &ids, &params).unwrap();
        assert!(report.was_clean());
        assert_eq!(report.repaired_edges, 0);
        assert_eq!(session.coloring(), &before);
    }

    #[test]
    fn corruption_is_detected_and_healed() {
        let (dg, ids, params, mut session) = session(3);
        let touched = session.inject_corruption(dg.graph(), 99, 12);
        assert_eq!(touched.len(), 12);
        // The corruption genuinely breaks the coloring.
        assert!(
            !check_proper_edge_coloring(dg.graph(), session.coloring()).is_ok()
                || !check_complete(dg.graph(), session.coloring()).is_ok()
        );
        let report = session.stabilize(&dg, &touched, &ids, &params).unwrap();
        assert!(report.conflicts_found > 0);
        assert!(report.repaired_edges >= report.conflicts_found.min(1));
        // Fully healed, within the original budget.
        check_proper_edge_coloring(dg.graph(), session.coloring()).assert_ok();
        check_complete(dg.graph(), session.coloring()).assert_ok();
        check_palette_size(session.coloring(), session.palette()).assert_ok();
        // The repair's own delta certificate is clean.
        check_delta(
            dg.graph(),
            session.coloring(),
            &report.touched,
            session.palette(),
        )
        .assert_ok();
        let (calls, conflicts, repaired) = session.lifetime_stats();
        assert_eq!(calls, 1);
        assert!(conflicts > 0 && repaired > 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let (dg, ids, params, mut a) = session(5);
        let (_, _, _, mut b) = session(5);
        let ta = a.inject_corruption(dg.graph(), 7, 9);
        let tb = b.inject_corruption(dg.graph(), 7, 9);
        assert_eq!(ta, tb);
        assert_eq!(a.coloring(), b.coloring());
        let ra = a.stabilize(&dg, &ta, &ids, &params).unwrap();
        let rb = b.stabilize(&dg, &tb, &ids, &params).unwrap();
        assert_eq!(a.coloring(), b.coloring());
        assert_eq!(ra.touched, rb.touched);
        assert_eq!(ra.conflicts_found, rb.conflicts_found);
    }

    #[test]
    fn repeated_stabilization_converges_to_clean() {
        let (dg, ids, params, mut session) = session(11);
        let touched = session.inject_corruption(dg.graph(), 1, 20);
        session.stabilize(&dg, &touched, &ids, &params).unwrap();
        // Second pass over the same suspects: nothing left to do.
        let second = session.stabilize(&dg, &touched, &ids, &params).unwrap();
        assert!(second.was_clean());
    }

    #[test]
    fn full_graph_corruption_is_exact_and_heals() {
        // `count == m` forces the collision fallback: exactly m distinct
        // edges must be corrupted, and the session must still heal.
        let (dg, ids, params, mut session) = session(13);
        let m = dg.m();
        let touched = session.inject_corruption(dg.graph(), 4, m);
        assert_eq!(touched.len(), m, "every edge corrupted exactly once");
        let mut unique: Vec<EdgeId> = touched.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), m);
        let report = session.stabilize(&dg, &touched, &ids, &params).unwrap();
        assert!(report.conflicts_found > 0);
        check_proper_edge_coloring(dg.graph(), session.coloring()).assert_ok();
        check_complete(dg.graph(), session.coloring()).assert_ok();
        check_palette_size(session.coloring(), session.palette()).assert_ok();
    }

    /// The promoted stale-conflict case: `crates/verify/tests/adversarial.rs`
    /// documents that a conflict strictly outside the touched neighborhood is
    /// invisible to `check_delta` — out of contract for the incremental
    /// checker. With the full-sweep escape hatch enabled, the stabilization
    /// loop *does* contract to catch it: within one period, the sweep call
    /// widens detection to every edge, finds the stale pair, and heals it.
    #[test]
    fn full_sweep_escape_hatch_heals_stale_conflicts_outside_the_suspect_set() {
        let (dg, ids, params, session) = session(17);
        let mut session = session.with_full_sweep_every(2);
        let graph = dg.graph();
        let corrupted = session.inject_corruption(graph, 23, 4);

        // Build a suspect set strictly outside the corrupted neighborhood:
        // no corrupted edge, and no edge adjacent to one, so `check_delta`
        // over it cannot see any of the injected conflicts.
        let mut hot = std::collections::HashSet::new();
        for &e in &corrupted {
            hot.insert(e);
            let (u, v) = graph.endpoints(e);
            for nb in graph.neighbors(u).iter().chain(graph.neighbors(v)) {
                hot.insert(nb.edge);
            }
        }
        let far: Vec<EdgeId> = graph.edges().filter(|e| !hot.contains(e)).take(8).collect();
        assert_eq!(far.len(), 8, "grid torus leaves plenty of far edges");

        // Call 1 (no sweep): the stale corruption is outside the suspect
        // neighborhood, so the incremental detector reports clean — the
        // documented out-of-contract behavior...
        let first = session.stabilize(&dg, &far, &ids, &params).unwrap();
        assert!(first.was_clean());
        assert!(!first.full_sweep);
        assert!(
            !check_proper_edge_coloring(graph, session.coloring()).is_ok()
                || !check_complete(graph, session.coloring()).is_ok()
        );

        // ...call 2 (the period-th call) sweeps the full edge set, catches
        // the stale conflicts, and heals them within the palette budget.
        let second = session.stabilize(&dg, &far, &ids, &params).unwrap();
        assert!(second.full_sweep);
        assert!(second.conflicts_found > 0);
        check_proper_edge_coloring(graph, session.coloring()).assert_ok();
        check_complete(graph, session.coloring()).assert_ok();
        check_palette_size(session.coloring(), session.palette()).assert_ok();
    }

    #[test]
    fn full_sweep_period_one_sweeps_every_call() {
        let (dg, ids, params, session) = session(19);
        let mut session = session.with_full_sweep_every(1);
        let report = session.stabilize(&dg, &[], &ids, &params).unwrap();
        assert!(report.full_sweep);
        assert!(report.was_clean());
    }

    #[test]
    #[should_panic(expected = "full-sweep period must be positive")]
    fn full_sweep_period_zero_is_rejected() {
        let (_, _, _, session) = session(21);
        let _ = session.with_full_sweep_every(0);
    }

    #[test]
    fn empty_graph_and_zero_count_are_safe() {
        let dg = DynamicGraph::from_graph(generators::path(1));
        let ids = IdAssignment::contiguous(1);
        let params = ColoringParams::new(0.5);
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let mut session = SelfStabilizing::new(rec);
        assert!(session.inject_corruption(dg.graph(), 3, 0).is_empty());
        assert!(session.inject_corruption(dg.graph(), 3, 5).is_empty());
        let report = session.stabilize(&dg, &[], &ids, &params).unwrap();
        assert!(report.was_clean());
    }
}
