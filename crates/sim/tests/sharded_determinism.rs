//! The determinism battery for the sharded execution substrate.
//!
//! `ExecutionPolicy::Sharded { shards, threads }` routes every round through
//! the `distshard` partition/exchange substrate: per-node work runs
//! shard-locally and only boundary-crossing messages move between shards
//! (one coalesced buffer per shard pair per round). The contract is the same
//! as the parallel engine's: results **bit-identical** to `Sequential` —
//! same [`Mailboxes`](distsim::Mailboxes), same metrics, same program
//! outputs, same final colorings — at every shard and thread count. These
//! property tests sweep random graphs/seeds/models over the shard matrix
//! {2, 4, 8} (with 1, 2 and 3 worker threads) and compare against the
//! sequential reference at every layer of the stack.

use distgraph::{generators, EdgeId, Graph, NodeId};
use distsim::{
    run_program, run_program_with, ExecutionPolicy, IdAssignment, Incoming, Model, Network,
    NodeCtx, NodeProgram, Step,
};
use edgecolor::{color_congest, color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};
use proptest::prelude::*;

/// The Sharded{2,4,8} sweep of the differential battery, with varying worker
/// thread counts so both the single-threaded and the threaded shard loops
/// are exercised.
const SHARD_MATRIX: [(usize, usize); 3] = [(2, 1), (4, 2), (8, 3)];

/// Random simple graph strategy: node count plus a sanitized edge list.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..32).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(96)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

fn arb_model() -> impl Strategy<Value = Model> {
    (0u64..3).prop_map(|pick| match pick {
        0 => Model::Local,
        1 => Model::Congest { bandwidth_bits: 8 },
        _ => Model::Congest { bandwidth_bits: 64 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_broadcast_is_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        let ids = IdAssignment::scattered(g.n(), seed);
        let mut seq_net = Network::new(&g, model);
        let seq_mail = seq_net.broadcast(|v| ids.id(v) * 3 + v.index() as u64);
        for (shards, threads) in SHARD_MATRIX {
            let mut net =
                Network::with_policy(&g, model, ExecutionPolicy::sharded(shards, threads));
            let mail = net.broadcast(|v| ids.id(v) * 3 + v.index() as u64);
            prop_assert_eq!(&seq_mail, &mail);
            prop_assert_eq!(seq_net.metrics(), net.metrics());
            // The shard-aware delivery path ran, so its state is observable.
            let state = net.shard_state().expect("sharded round ran");
            prop_assert_eq!(state.report().shards, shards);
            prop_assert_eq!(state.router_stats().rounds, 1);
        }
    }

    #[test]
    fn sharded_exchange_sync_is_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        // Per-edge payload sizes and skipped edges, so message counts, bit
        // totals and congest violations all vary.
        let send = |v: NodeId| -> Vec<(EdgeId, Vec<u64>)> {
            g.neighbors(v)
                .iter()
                .filter(|nb| !(v.index() * 7 + nb.edge.index() + seed as usize).is_multiple_of(4))
                .map(|nb| {
                    let len = (nb.edge.index() + v.index()) % 3 + 1;
                    (nb.edge, vec![seed.wrapping_mul(v.index() as u64 + 1); len])
                })
                .collect()
        };
        let mut seq_net = Network::new(&g, model);
        let seq_mail = seq_net.exchange_sync(send);
        for (shards, threads) in SHARD_MATRIX {
            let mut net =
                Network::with_policy(&g, model, ExecutionPolicy::sharded(shards, threads));
            let mail = net.exchange_sync(send);
            prop_assert_eq!(&seq_mail, &mail);
            prop_assert_eq!(seq_net.metrics(), net.metrics());
        }
    }

    #[test]
    fn cross_shard_traffic_is_bounded_by_the_cut((g, seed) in (arb_graph(), 0u64..1000)) {
        // Every cross-shard message crosses a boundary edge, so per round the
        // router carries at most 2 · cut_edges messages (one per direction).
        let ids = IdAssignment::scattered(g.n(), seed);
        for (shards, threads) in SHARD_MATRIX {
            let mut net = Network::with_policy(
                &g,
                Model::Local,
                ExecutionPolicy::sharded(shards, threads),
            );
            net.broadcast(|v| ids.id(v));
            let state = net.shard_state().expect("sharded round ran");
            let cut = state.sharded_graph().cut_edges() as u64;
            let stats = state.router_stats();
            prop_assert!(stats.cross_messages <= 2 * cut,
                "{} cross messages over a cut of {}", stats.cross_messages, cut);
            // A broadcast sends over every edge in both directions, so the
            // bound is tight.
            prop_assert_eq!(stats.cross_messages, 2 * cut);
        }
    }
}

/// Flooding with a per-round halting schedule: nodes halt at different
/// rounds, which stresses the halted-node bookkeeping of the sharded path.
struct StaggeredFlood {
    best: u64,
    budget: u32,
}

impl NodeProgram for StaggeredFlood {
    type Msg = u64;
    type Output = (u64, u32);

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        self.best = ctx.id;
        ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, (u64, u32)> {
        for m in inbox {
            self.best = self.best.max(m.msg);
        }
        if self.budget == 0 {
            return Step::Halt((self.best, ctx.degree as u32));
        }
        self.budget -= 1;
        Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_program_runs_are_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        let ids = IdAssignment::scattered(g.n(), seed);
        let budget_of = |v: NodeId| (v.index() as u32 + seed as u32) % 5;
        let reference = run_program(&g, &ids, model, 16, |v| StaggeredFlood {
            best: 0,
            budget: budget_of(v),
        });
        for (shards, threads) in SHARD_MATRIX {
            let run = run_program_with(
                &g,
                &ids,
                model,
                ExecutionPolicy::sharded(shards, threads),
                16,
                |v| StaggeredFlood {
                    best: 0,
                    budget: budget_of(v),
                },
            );
            prop_assert_eq!(&reference.outputs, &run.outputs);
            prop_assert_eq!(reference.metrics, run.metrics);
            let stats = run.shard.expect("sharded run reports shard stats");
            prop_assert_eq!(stats.report.shards, shards);
            prop_assert_eq!(stats.report.m, g.m());
        }
    }
}

proptest! {
    // The full algorithms are expensive; fewer cases still cover a healthy
    // spread of graphs and seeds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_color_edges_local_is_policy_invariant((g, seed) in (arb_graph(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let params = ColoringParams::new(0.5);
        let reference = color_edges_local(&g, &ids, &params).expect("valid instance");
        if g.m() > 0 {
            check_proper_edge_coloring(&g, &reference.coloring).assert_ok();
            check_complete(&g, &reference.coloring).assert_ok();
        }
        for (shards, threads) in SHARD_MATRIX {
            let sharded = params.with_policy(ExecutionPolicy::sharded(shards, threads));
            let outcome = color_edges_local(&g, &ids, &sharded).expect("valid instance");
            prop_assert_eq!(&reference.coloring, &outcome.coloring);
            prop_assert_eq!(reference.metrics, outcome.metrics);
            prop_assert_eq!(reference.colors_used, outcome.colors_used);
            prop_assert_eq!(reference.outer_iterations, outcome.outer_iterations);
            prop_assert_eq!(reference.solver_calls, outcome.solver_calls);
        }
    }

    #[test]
    fn sharded_color_congest_is_policy_invariant((g, seed) in (arb_graph(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let params = ColoringParams::new(0.5);
        let reference = color_congest(&g, &ids, &params);
        if g.m() > 0 {
            check_proper_edge_coloring(&g, &reference.coloring).assert_ok();
            check_complete(&g, &reference.coloring).assert_ok();
        }
        for (shards, threads) in SHARD_MATRIX {
            let sharded = params.with_policy(ExecutionPolicy::sharded(shards, threads));
            let outcome = color_congest(&g, &ids, &sharded);
            prop_assert_eq!(&reference.coloring, &outcome.coloring);
            prop_assert_eq!(reference.metrics, outcome.metrics);
            prop_assert_eq!(reference.colors_used, outcome.colors_used);
            prop_assert_eq!(reference.levels, outcome.levels);
        }
    }
}

/// Non-property check on a structured instance large enough for the coloring
/// machinery's outer loop to engage.
#[test]
fn structured_instances_are_shard_invariant() {
    let bg = generators::regular_bipartite(24, 10, 3).expect("feasible");
    let g = bg.graph().clone();
    let ids = IdAssignment::scattered(g.n(), 9);
    let params = ColoringParams::new(0.5);
    let local_ref = color_edges_local(&g, &ids, &params).expect("valid instance");
    let congest_ref = color_congest(&g, &ids, &params);
    for (shards, threads) in SHARD_MATRIX {
        let sharded = params.with_policy(ExecutionPolicy::sharded(shards, threads));
        let local = color_edges_local(&g, &ids, &sharded).expect("valid instance");
        assert_eq!(local_ref.coloring, local.coloring, "sharded({shards})");
        assert_eq!(local_ref.metrics, local.metrics, "sharded({shards})");
        let congest = color_congest(&g, &ids, &sharded);
        assert_eq!(congest_ref.coloring, congest.coloring, "sharded({shards})");
        assert_eq!(congest_ref.metrics, congest.metrics, "sharded({shards})");
    }
}

/// Switching a network's policy mid-run rebuilds the shard state lazily for
/// the new shard count.
#[test]
fn shard_state_rebuilds_on_policy_change() {
    let g = generators::grid_torus(6, 6);
    let mut net = Network::with_policy(&g, Model::Local, ExecutionPolicy::sharded(2, 1));
    net.broadcast(|v| v.index() as u64);
    assert_eq!(net.shard_state().unwrap().report().shards, 2);
    net.set_policy(ExecutionPolicy::sharded(4, 1));
    net.broadcast(|v| v.index() as u64);
    assert_eq!(net.shard_state().unwrap().report().shards, 4);
    // Two rounds total, but the stats reset with the rebuild: only the
    // second round is attributed to the 4-shard state.
    assert_eq!(net.shard_state().unwrap().router_stats().rounds, 1);
    assert_eq!(net.rounds(), 2);
}

/// The strict program layer (unlike `Network::exchange_sync`) tolerates a
/// program sending twice over one edge in a round; the sharded path's
/// stable inbox sort must then reproduce the sequential send order for the
/// duplicate entries, keeping outputs bit-identical.
#[test]
fn duplicate_sends_keep_their_order_under_sharding() {
    /// Sends (round, 2·round) over every port each round; outputs a hash of
    /// the inbox *in delivery order*, so any reordering changes the output.
    struct DoubleSend {
        acc: u64,
        rounds_left: u32,
    }
    impl NodeProgram for DoubleSend {
        type Msg = u64;
        type Output = u64;
        fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
            ctx.ports
                .iter()
                .flat_map(|p| [(p.edge, 1u64), (p.edge, 2u64)])
                .collect()
        }
        fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, u64> {
            for (i, m) in inbox.iter().enumerate() {
                self.acc = self
                    .acc
                    .wrapping_mul(31)
                    .wrapping_add(m.msg.wrapping_mul(7))
                    .wrapping_add(m.from.index() as u64 + i as u64);
            }
            if self.rounds_left == 0 {
                return Step::Halt(self.acc);
            }
            self.rounds_left -= 1;
            Step::Send(
                ctx.ports
                    .iter()
                    .flat_map(|p| [(p.edge, self.acc), (p.edge, self.acc ^ 1)])
                    .collect(),
            )
        }
    }
    let g = generators::grid_torus(5, 5);
    let ids = IdAssignment::scattered(g.n(), 11);
    let make = |_| DoubleSend {
        acc: 0,
        rounds_left: 4,
    };
    let reference = run_program(&g, &ids, Model::Local, 8, make);
    for (shards, threads) in SHARD_MATRIX {
        let run = run_program_with(
            &g,
            &ids,
            Model::Local,
            ExecutionPolicy::sharded(shards, threads),
            8,
            make,
        );
        assert_eq!(run.outputs, reference.outputs, "sharded({shards})");
        assert_eq!(run.metrics, reference.metrics, "sharded({shards})");
    }
}

/// The sharded validation contract matches the sequential one, panic
/// messages included.
#[test]
#[should_panic(expected = "non-incident")]
fn sharded_sending_over_foreign_edge_panics() {
    let g = generators::path(4);
    let mut net = Network::with_policy(&g, Model::Local, ExecutionPolicy::sharded(2, 1));
    net.exchange_sync(|v| {
        if v.index() == 0 {
            vec![(EdgeId::new(2), 1u32)]
        } else {
            vec![]
        }
    });
}

#[test]
#[should_panic(expected = "two messages")]
fn sharded_sending_twice_over_same_edge_panics() {
    let g = generators::path(2);
    let mut net = Network::with_policy(&g, Model::Local, ExecutionPolicy::sharded(2, 2));
    net.exchange_sync(|v| {
        if v.index() == 0 {
            vec![(EdgeId::new(0), 1u32), (EdgeId::new(0), 2u32)]
        } else {
            vec![]
        }
    });
}
