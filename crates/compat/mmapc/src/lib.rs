//! Offline stand-in for `memmap2`-style read-only file mapping.
//!
//! The snapshot layer (`diststore`) opens binary snapshots through this
//! shim so its code is written against an mmap-shaped API: a [`Mmap`] that
//! maps a whole file and derefs to `&[u8]`. The build environment is
//! offline and `std` has no memory-mapping primitive, so the only backend
//! here is a **plain `read`-into-buffer fallback** — it fills a `Vec<u8>`
//! with one sequential read, which keeps the whole workspace buildable
//! without `libc`/`memmap2` and keeps `#![forbid(unsafe_code)]` crates
//! clean (real mmap cannot be expressed without `unsafe`).
//!
//! When a registry is available, swap this crate for `memmap2` in the
//! workspace `[workspace.dependencies]` and replace `Mmap::map_path` calls
//! with `File::open` + `unsafe { Mmap::map(&file) }` in one place
//! (`diststore::Snapshot::open`); the deref-to-bytes surface is identical,
//! and snapshot opens become O(map) instead of O(read).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// A read-only byte buffer with the surface of a memory-mapped file.
///
/// With the offline backend the bytes are owned (read once from the file);
/// with an upstream `memmap2` backend they would be borrowed from the page
/// cache. Either way consumers only see `&[u8]`.
#[derive(Debug, Clone)]
pub struct Mmap {
    buf: Vec<u8>,
}

impl Mmap {
    /// Maps an open file (offline backend: reads it fully into memory).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from reading the file.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let mut file = file.try_clone()?;
        // Reserve the file's size up front: without the hint `read_to_end`
        // grows the buffer geometrically, and the repeated reallocation +
        // copy is measurable on the multi-megabyte snapshots this shim
        // backs. The extra byte lets `read_to_end` detect EOF without a
        // final doubling.
        let hint = file.metadata().map(|m| m.len() as usize + 1).unwrap_or(0);
        let mut buf = Vec::with_capacity(hint);
        file.read_to_end(&mut buf)?;
        Ok(Mmap { buf })
    }

    /// Opens and maps the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from opening or reading the file.
    pub fn map_path(path: impl AsRef<Path>) -> io::Result<Mmap> {
        let file = File::open(path)?;
        Self::map(&file)
    }

    /// Wraps an in-memory buffer (used by codec tests and by encoders that
    /// want to reopen bytes they just produced without touching disk).
    pub fn from_vec(buf: Vec<u8>) -> Mmap {
        Mmap { buf }
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` for an empty mapping.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_a_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("mmapc_test_roundtrip.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let map = Mmap::map_path(&path).unwrap();
        assert_eq!(&*map, &[1, 2, 3, 4, 5]);
        assert_eq!(map.len(), 5);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wraps_vectors() {
        let map = Mmap::from_vec(vec![9, 8]);
        assert_eq!(map.as_ref(), &[9, 8]);
        assert!(Mmap::from_vec(Vec::new()).is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::map_path("/definitely/not/a/file").is_err());
    }
}
