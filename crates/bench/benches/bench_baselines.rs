//! Wall-clock cost of the baseline algorithms (experiment E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;
use distsim::{IdAssignment, Model};
use edgecolor_baselines as baselines;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let delta = 16usize;
    let graph = generators::random_regular(4 * delta, delta, 11).unwrap();
    let ids = IdAssignment::scattered(graph.n(), 3);
    group.bench_with_input(
        BenchmarkId::new("greedy_sequential", delta),
        &delta,
        |b, _| b.iter(|| baselines::greedy_sequential(&graph)),
    );
    group.bench_with_input(BenchmarkId::new("misra_gries", delta), &delta, |b, _| {
        b.iter(|| baselines::misra_gries(&graph))
    });
    group.bench_with_input(
        BenchmarkId::new("greedy_by_classes", delta),
        &delta,
        |b, _| b.iter(|| baselines::greedy_by_classes(&graph, &ids, Model::Local)),
    );
    group.bench_with_input(BenchmarkId::new("kw_reduction", delta), &delta, |b, _| {
        b.iter(|| baselines::kw_reduction(&graph, &ids, Model::Local))
    });
    group.bench_with_input(BenchmarkId::new("randomized", delta), &delta, |b, _| {
        b.iter(|| baselines::randomized_coloring(&graph, 3, Model::Local))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
