//! Link check over the Markdown documentation.
//!
//! Every relative link in `README.md` and `docs/*.md` must point at a file
//! (or directory) that exists in the repository, so the documentation layer
//! cannot silently rot as files move. External (`http(s)`/`mailto`) links
//! and pure in-page anchors are skipped — the build environment is offline.
//! CI runs this as part of the `docs` job alongside
//! `cargo doc --workspace --no-deps` with `RUSTDOCFLAGS="-D warnings"`.

use std::path::{Path, PathBuf};

/// The documentation files under link check: `README.md` plus every
/// Markdown file in `docs/`.
fn documentation_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(
        files.len() >= 4,
        "expected README.md plus at least ARCHITECTURE/PAPER_MAP/BENCH_SCHEMA, found {files:?}"
    );
    files
}

/// Extracts the targets of inline Markdown links `[text](target)` from one
/// line. Good enough for the hand-written docs in this repository (no
/// reference-style links, no angle-bracketed destinations).
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(rel_end) = line[i + 2..].find(')') {
                let target = &line[i + 2..i + 2 + rel_end];
                targets.push(target.to_string());
                i += 2 + rel_end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();
    for file in documentation_files(root) {
        let content = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let base = file.parent().expect("doc files live in a directory");
        let mut in_code_block = false;
        for (lineno, line) in content.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_block = !in_code_block;
                continue;
            }
            if in_code_block {
                continue;
            }
            for target in link_targets(line) {
                // External links and pure in-page anchors are out of scope.
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                {
                    continue;
                }
                // Drop a fragment, if any: `FILE.md#section` checks FILE.md.
                let path_part = target.split('#').next().unwrap_or(&target);
                if path_part.is_empty() {
                    continue;
                }
                checked += 1;
                let resolved = base.join(path_part);
                if !resolved.exists() {
                    broken.push(format!(
                        "{}:{}: broken link `{}` (resolved to {})",
                        file.display(),
                        lineno + 1,
                        target,
                        resolved.display()
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
    // The docs genuinely contain relative links; an empty count would mean
    // the extractor regressed, not that the docs are clean.
    assert!(
        checked >= 8,
        "only {checked} relative links found — extractor broken?"
    );
}

#[test]
fn link_extractor_handles_the_common_shapes() {
    assert_eq!(
        link_targets("see [a](docs/X.md) and [b](Y.md#frag)"),
        vec!["docs/X.md".to_string(), "Y.md#frag".to_string()]
    );
    assert!(link_targets("no links here").is_empty());
    assert_eq!(
        link_targets("[anchor only](#section)"),
        vec!["#section".to_string()]
    );
}
