//! Unique node identifiers from `{1, ..., poly n}`.
//!
//! The LOCAL model (Section 2) equips every node with a unique identifier
//! chosen from a polynomially sized space. The identifiers are the *only*
//! initial symmetry-breaking information, and the `O(log* n)` terms in the
//! paper's bounds come exclusively from reducing this identifier space to a
//! `poly(Δ)`-sized coloring (à la Linial).

use distgraph::NodeId;
use serde::{Deserialize, Serialize};

/// An assignment of unique identifiers to the nodes of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAssignment {
    ids: Vec<u64>,
    space: u64,
}

impl IdAssignment {
    /// Identifiers `1, ..., n` in node order (the simplest valid assignment).
    pub fn contiguous(n: usize) -> Self {
        IdAssignment {
            ids: (1..=n as u64).collect(),
            space: (n as u64).max(1),
        }
    }

    /// Unique identifiers drawn deterministically (from `seed`) from the space
    /// `{1, ..., n³}`, exercising the "identifiers are arbitrary poly(n)
    /// values" aspect of the model.
    pub fn scattered(n: usize, seed: u64) -> Self {
        // Use a multiplicative permutation of {0, ..., n³-1}: i -> (a·i + b) mod p
        // for a prime p ≥ n³, retaining uniqueness, then add 1.
        let space = ((n as u64).pow(3)).max(1);
        let p = next_prime(space.max(2));
        let a = (seed.wrapping_mul(6364136223846793005).wrapping_add(1)) % (p - 1) + 1;
        let b = seed.wrapping_mul(1442695040888963407) % p;
        let mut ids = Vec::with_capacity(n);
        let mut produced = std::collections::HashSet::with_capacity(n);
        let mut i = 0u64;
        while ids.len() < n {
            let candidate = (a.wrapping_mul(i) + b) % p;
            i += 1;
            if candidate < space && produced.insert(candidate) {
                ids.push(candidate + 1);
            }
        }
        IdAssignment {
            ids,
            space: space.max(n as u64),
        }
    }

    /// Creates an assignment from explicit identifiers.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are not unique or contain 0.
    pub fn from_vec(ids: Vec<u64>) -> Self {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
        assert!(ids.iter().all(|&id| id > 0), "identifiers must be positive");
        let space = ids.iter().copied().max().unwrap_or(1);
        IdAssignment { ids, space }
    }

    /// The identifier of node `v`.
    #[inline]
    pub fn id(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// Size of the identifier space (an upper bound on every identifier).
    #[inline]
    pub fn space(&self) -> u64 {
        self.space
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the assignment covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The smallest prime `≥ value` (trial division; identifier spaces are small).
fn next_prime(value: u64) -> u64 {
    let mut candidate = value.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

fn is_prime(value: u64) -> bool {
    if value < 2 {
        return false;
    }
    if value.is_multiple_of(2) {
        return value == 2;
    }
    let mut d = 3u64;
    while d * d <= value {
        if value.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_ids() {
        let ids = IdAssignment::contiguous(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(ids.id(NodeId::new(0)), 1);
        assert_eq!(ids.id(NodeId::new(4)), 5);
        assert_eq!(ids.space(), 5);
        assert!(!ids.is_empty());
    }

    #[test]
    fn scattered_ids_are_unique_and_in_range() {
        let n = 200;
        let ids = IdAssignment::scattered(n, 7);
        let mut seen = std::collections::HashSet::new();
        for v in 0..n {
            let id = ids.id(NodeId::new(v));
            assert!(id >= 1);
            assert!(id <= (n as u64).pow(3));
            assert!(seen.insert(id), "duplicate identifier {id}");
        }
    }

    #[test]
    fn scattered_ids_depend_on_seed() {
        let a = IdAssignment::scattered(50, 1);
        let b = IdAssignment::scattered(50, 2);
        assert_ne!(a, b);
        let a2 = IdAssignment::scattered(50, 1);
        assert_eq!(a, a2);
    }

    #[test]
    fn from_vec_accepts_unique_positive() {
        let ids = IdAssignment::from_vec(vec![10, 3, 99]);
        assert_eq!(ids.id(NodeId::new(2)), 99);
        assert_eq!(ids.space(), 99);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn from_vec_rejects_duplicates() {
        IdAssignment::from_vec(vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_vec_rejects_zero() {
        IdAssignment::from_vec(vec![0, 1]);
    }

    #[test]
    fn prime_helpers() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91));
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(2), 2);
    }
}
