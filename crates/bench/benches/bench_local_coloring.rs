//! Wall-clock cost of the (2Δ−1) LOCAL list edge coloring (experiments E1/E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;
use distsim::IdAssignment;
use edgecolor::{color_edges_local, ColoringParams};

fn bench_local_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_list_edge_coloring");
    group.sample_size(10);
    for &delta in &[8usize, 16] {
        let graph = generators::random_regular((4 * delta).max(96), delta, 7).unwrap();
        let ids = IdAssignment::scattered(graph.n(), 3);
        let params = ColoringParams::new(0.5);
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, _| {
            b.iter(|| color_edges_local(&graph, &ids, &params).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_coloring);
criterion_main!(benches);
