//! The daemon's state machine: a registry of independent per-graph
//! **tenants**, each with epoch-published graph + coloring, admission
//! control, per-tick batch coalescing and snapshot hot-swap.
//!
//! # Multi-graph registry (protocol v2)
//!
//! [`ServerCore`] owns a fixed, boot-time vector of [`Tenant`]s. The
//! `graph_id` in a v2 frame header is a dense index into that vector;
//! tenant 0 is the **default graph** every v1 (handshake-less) connection
//! is routed to. Tenants share nothing but the connection-level
//! `protocol_errors` counter: each has its own admission queue, epoch
//! chain, batch log, latency histograms and swap quiesce flag, so a slow
//! repair tick on one graph never blocks admissions or reads on another.
//! An out-of-range `graph_id` answers a typed
//! [`RejectCode::UnknownGraph`] reject — routing faults are not admission
//! faults and are not charged to any tenant's counters.
//!
//! # Concurrency contract (per tenant)
//!
//! The served state lives in an immutable [`EpochState`] behind
//! `RwLock<Arc<EpochState>>`. Readers clone the `Arc` under a briefly held
//! read lock and then answer entirely off that pinned state — an in-flight
//! read always observes one consistent `(epoch, version)` pair, never a torn
//! mix, even while a tick or hot swap publishes a successor. Writers
//! (`tick`, `swap`) serialize on a dedicated mutex, build the successor
//! state *off to the side* on clones, and publish it with one pointer swap.
//!
//! # Admission control (per tenant)
//!
//! Submissions pass through a bounded queue with full validation at the
//! door: every delete must name a live stable id not already spoken for,
//! every insert a non-loop, in-range endpoint pair that is neither live
//! (unless its live edge is pending deletion) nor already pending. The
//! rules exactly mirror [`DynamicGraph::apply`]'s batch validation, so the
//! per-tick coalesced batch — all admitted deletes, then all admitted
//! inserts, in admission order — is always accepted by `apply`, and
//! admission order equals application order. Overflow and quiesced states
//! answer with typed [`RejectCode`]s instead of errors.
//!
//! # Lock order (per tenant)
//!
//! `writer → pending → state`. Admission takes `pending → state(read)`,
//! reads take `state(read)` only; no path acquires them in the opposite
//! order, so the hierarchy is deadlock-free. No code path holds locks of
//! two tenants at once.

use crate::error::SetupError;
use crate::hist::LatencyHistogram;
use crate::wire::{GraphInfo, LookupOutcome, MetricsReport, RejectCode, Request, Response};
use distgraph::{DynamicGraph, EdgeColoring, EdgeId, Graph, NodeId, UpdateBatch};
use distshard::bfs_partition;
use distsim::{ExecutionPolicy, IdAssignment};
use diststore::{LoadedSnapshot, Snapshot};
use edgecolor::{default_palette, ColoringParams, Recoloring, SelfStabilizing};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for one serving tenant.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum admitted-but-unapplied batches before submissions are
    /// rejected with [`RejectCode::QueueFull`].
    pub queue_capacity: usize,
    /// Background tick period. `None` runs no tick thread — batches apply
    /// on `Flush` requests or explicit [`Tenant::tick`] calls (the mode
    /// the deterministic tests drive).
    pub tick_interval_ms: Option<u64>,
    /// Δ-growth headroom provisioned into the palette budget
    /// ([`Recoloring::with_budget`] semantics): the initial budget is
    /// `2(Δ + headroom) − 1`.
    pub headroom: usize,
    /// Target ε of the coloring parameters.
    pub eps: f64,
    /// Execution policy for repair passes (the `distsim` policy knob).
    pub policy: ExecutionPolicy,
    /// Seed of the scattered node-id assignment.
    pub id_seed: u64,
    /// Optional full-sweep period for the self-stabilization layer
    /// ([`SelfStabilizing::with_full_sweep_every`]).
    pub full_sweep_every: Option<u64>,
    /// Per-connection in-flight request cap advertised in the v2
    /// [`Response::Welcome`] and enforced by the pipelined connection
    /// worker.
    pub max_inflight: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            tick_interval_ms: Some(2),
            headroom: 2,
            eps: 0.5,
            policy: ExecutionPolicy::Sequential,
            id_seed: 1,
            full_sweep_every: None,
            max_inflight: 32,
        }
    }
}

/// One immutable published generation of served state. Everything a read
/// needs — graph, coloring, ids — is reachable from one `Arc`, so a reader
/// holding it observes a single consistent generation.
#[derive(Debug, Clone)]
pub struct EpochState {
    epoch: u64,
    version: u64,
    dg: DynamicGraph,
    stab: SelfStabilizing,
    ids: Arc<IdAssignment>,
}

impl EpochState {
    /// The snapshot epoch (bumped only by hot swaps).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The applied-batch version within the epoch (bumped every tick).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dynamic graph of this generation.
    pub fn dynamic(&self) -> &DynamicGraph {
        &self.dg
    }

    /// The self-stabilizing session of this generation.
    pub fn stabilizer(&self) -> &SelfStabilizing {
        &self.stab
    }

    /// The maintained coloring of this generation.
    pub fn coloring(&self) -> &EdgeColoring {
        self.stab.coloring()
    }

    /// The node-id assignment repairs run under.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }
}

/// Pending (admitted, unapplied) work plus the bookkeeping sets admission
/// validates against.
#[derive(Debug, Default)]
struct Pending {
    batches: Vec<UpdateBatch>,
    /// Stable ids pending deletion (admitted, not yet drained).
    deletes: HashSet<EdgeId>,
    /// Normalized endpoint pairs pending insertion.
    pairs: HashSet<(usize, usize)>,
    /// Drained into a tick but not yet published.
    in_flight_deletes: HashSet<EdgeId>,
    /// Drained into a tick but not yet published.
    in_flight_pairs: HashSet<(usize, usize)>,
    admitted: u64,
    applied: u64,
}

#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    lookup_hits: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    ticks: AtomicU64,
    coalesced_batches: AtomicU64,
    repaired_edges: AtomicU64,
    full_recolors: AtomicU64,
    stabilizations: AtomicU64,
    conflicts_found: AtomicU64,
    swaps: AtomicU64,
    swaps_rejected: AtomicU64,
    internal_errors: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One independently served graph: published state, admission queue,
/// counters, latency histograms and batch log. The whole PR-9 per-graph
/// state machine lives here; [`ServerCore`] is the registry that routes
/// v2 frames to the right tenant.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    state: RwLock<Arc<EpochState>>,
    pending: Mutex<Pending>,
    drained: Condvar,
    /// Serializes state writers (`tick` vs `swap`).
    writer: Mutex<()>,
    swapping: AtomicBool,
    config: ServeConfig,
    params: ColoringParams,
    counters: Counters,
    repair_hist: Mutex<LatencyHistogram>,
    lookup_hist: Mutex<LatencyHistogram>,
    batch_log: Mutex<Vec<(u64, UpdateBatch)>>,
}

impl Tenant {
    /// Builds a tenant over `graph`, coloring it from scratch with the
    /// configured budget.
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn new(
        name: impl Into<String>,
        graph: Graph,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        Self::from_dynamic(name, DynamicGraph::from_graph(graph), None, config)
    }

    /// Builds a tenant over an existing dynamic graph, adopting `coloring`
    /// if one is supplied and it passes the audit (falling back to a fresh
    /// coloring run if it does not).
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn from_dynamic(
        name: impl Into<String>,
        dg: DynamicGraph,
        coloring: Option<EdgeColoring>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        let ids = Arc::new(IdAssignment::scattered(dg.n(), config.id_seed));
        let params = ColoringParams::new(config.eps).with_policy(config.policy);
        let (rec, _) = session_for(&dg, coloring, &ids, &params, config.headroom)?;
        let mut stab = SelfStabilizing::new(rec);
        if let Some(period) = config.full_sweep_every {
            stab = stab.with_full_sweep_every(period);
        }
        let state = EpochState {
            epoch: 1,
            version: 0,
            dg,
            stab,
            ids,
        };
        Ok(Tenant {
            name: name.into(),
            state: RwLock::new(Arc::new(state)),
            pending: Mutex::new(Pending::default()),
            drained: Condvar::new(),
            writer: Mutex::new(()),
            swapping: AtomicBool::new(false),
            config,
            params,
            counters: Counters::default(),
            repair_hist: Mutex::new(LatencyHistogram::new()),
            lookup_hist: Mutex::new(LatencyHistogram::new()),
            batch_log: Mutex::new(Vec::new()),
        })
    }

    /// Builds a tenant from a snapshot file (the daemon's boot path):
    /// open + validate, materialize, adopt the stored coloring if present.
    ///
    /// # Errors
    ///
    /// [`SetupError::Snapshot`] if the file fails validation,
    /// [`SetupError::Coloring`] if the initial coloring run fails.
    pub fn from_snapshot_path(
        name: impl Into<String>,
        path: impl AsRef<Path>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        let loaded = LoadedSnapshot::load_path(path)?;
        let coloring = loaded.coloring().cloned();
        let dg = loaded.into_dynamic()?;
        Self::from_dynamic(name, dg, coloring, config)
    }

    /// The tenant's human-readable name (snapshot stem or boot label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The coloring parameters repairs run under.
    pub fn params(&self) -> &ColoringParams {
        &self.params
    }

    /// Pins and returns the current published generation.
    pub fn state_snapshot(&self) -> Arc<EpochState> {
        self.state.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The coalesced batches applied so far, tagged with the epoch each was
    /// applied in — the sequential-replay log the concurrency battery and
    /// the bench harness certify against. Per tenant: replaying tenant `g`'s
    /// log against tenant `g`'s boot graph reproduces its coloring exactly.
    pub fn batch_log(&self) -> Vec<(u64, UpdateBatch)> {
        lock(&self.batch_log).clone()
    }

    /// Admitted-but-unapplied batch count.
    pub fn queue_depth(&self) -> usize {
        lock(&self.pending).batches.len()
    }

    /// Ticks that dropped a batch to an internal apply/repair failure —
    /// admission control makes this unreachable; nonzero values mean a bug.
    pub fn internal_errors(&self) -> u64 {
        self.counters.internal_errors.load(Ordering::Relaxed)
    }

    /// This tenant's row in the [`Response::Welcome`] catalog.
    pub fn info(&self, id: u32) -> GraphInfo {
        let st = self.state_snapshot();
        GraphInfo {
            id,
            name: self.name.clone(),
            n: st.dg.n() as u64,
            m: st.dg.m() as u64,
        }
    }

    // -- request handlers ---------------------------------------------------

    /// Dispatches one decoded request against this tenant. `Shutdown` only
    /// answers [`Response::ShuttingDown`] (stopping the daemon is the
    /// transport layer's job); `Hello` needs the registry catalog, so the
    /// core answers it before routing.
    pub fn handle(&self, req: &Request, protocol_errors: u64) -> Response {
        match req {
            Request::Lookup { stable } => self.lookup(*stable),
            Request::Submit { delete, insert } => self.submit(delete, insert),
            Request::Metrics => Response::Metrics(Box::new(self.metrics(protocol_errors))),
            Request::Palette => self.palette(),
            Request::ShardInfo { shards } => self.shards(*shards),
            Request::Swap { path } => self.swap(path),
            Request::Flush => self.flush(),
            Request::Shutdown => Response::ShuttingDown,
            Request::Hello { .. } => Response::ServerError {
                detail: "Hello is handled by the registry, not a tenant".into(),
            },
        }
    }

    /// Answers a color lookup off the pinned current generation.
    pub fn lookup(&self, stable: u64) -> Response {
        let started = Instant::now();
        let st = self.state_snapshot();
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        // Stable ids beyond the id space are simply unknown, not a fault.
        let sid = EdgeId::try_new(stable as usize).ok();
        let outcome = match sid.and_then(|sid| st.dg.internal_id(sid)) {
            None => LookupOutcome::Unknown,
            Some(e) => {
                self.counters.lookup_hits.fetch_add(1, Ordering::Relaxed);
                let (u, v) = st.dg.graph().endpoints(e);
                match st.coloring().color(e) {
                    Some(c) => LookupOutcome::Colored {
                        color: c as u64,
                        u: u.index() as u64,
                        v: v.index() as u64,
                    },
                    None => LookupOutcome::Uncolored {
                        u: u.index() as u64,
                        v: v.index() as u64,
                    },
                }
            }
        };
        lock(&self.lookup_hist).record(started.elapsed());
        Response::Color {
            epoch: st.epoch,
            version: st.version,
            outcome,
        }
    }

    /// Validates and admits one mutation batch, or rejects it with a typed
    /// code. Admission is atomic: the first violating operation rejects the
    /// whole batch and nothing is queued.
    pub fn submit(&self, delete: &[u64], insert: &[(u32, u32)]) -> Response {
        let mut p = lock(&self.pending);
        // Checked under the pending lock so no admission can slip past a
        // swap's quiesce barrier (`swap` raises the flag, then drains).
        if self.swapping.load(Ordering::SeqCst) {
            return self.reject(
                RejectCode::SwapInProgress,
                "snapshot swap in progress".into(),
            );
        }
        if p.batches.len() >= self.config.queue_capacity {
            return self.reject(
                RejectCode::QueueFull,
                format!("queue at capacity {}", self.config.queue_capacity),
            );
        }
        let st = self.state_snapshot();
        let n = st.dg.n();

        let mut batch_deletes: HashSet<EdgeId> = HashSet::new();
        for &d in delete {
            let Ok(sid) = EdgeId::try_new(d as usize) else {
                return self.reject(
                    RejectCode::UnknownEdge,
                    format!("stable id {d} exceeds the id space"),
                );
            };
            let spoken_for = p.deletes.contains(&sid)
                || p.in_flight_deletes.contains(&sid)
                || batch_deletes.contains(&sid);
            if spoken_for || st.dg.internal_id(sid).is_none() {
                return self.reject(
                    RejectCode::UnknownEdge,
                    format!("stable id {d} is not live (or already pending deletion)"),
                );
            }
            batch_deletes.insert(sid);
        }

        let mut batch_pairs: HashSet<(usize, usize)> = HashSet::new();
        for &(u, v) in insert {
            let (u, v) = (u as usize, v as usize);
            if u >= n || v >= n {
                return self.reject(
                    RejectCode::NodeOutOfRange,
                    format!("endpoint out of range: ({u}, {v}) with n = {n}"),
                );
            }
            if u == v {
                return self.reject(RejectCode::SelfLoop, format!("self-loop at node {u}"));
            }
            let key = (u.min(v), u.max(v));
            if p.pairs.contains(&key)
                || p.in_flight_pairs.contains(&key)
                || batch_pairs.contains(&key)
            {
                return self.reject(
                    RejectCode::DuplicateEdge,
                    format!("pair ({u}, {v}) is already pending insertion"),
                );
            }
            // A live edge blocks the insert unless that edge is pending
            // deletion (deletes apply before inserts within a tick).
            let live = st
                .dg
                .graph()
                .neighbors(NodeId::new(u))
                .iter()
                .find(|nb| nb.node.index() == v);
            if let Some(nb) = live {
                let sid = st.dg.stable_id(nb.edge);
                let dying = p.deletes.contains(&sid)
                    || p.in_flight_deletes.contains(&sid)
                    || batch_deletes.contains(&sid);
                if !dying {
                    return self.reject(
                        RejectCode::DuplicateEdge,
                        format!(
                            "pair ({u}, {v}) is already live as stable id {}",
                            sid.index()
                        ),
                    );
                }
            }
            batch_pairs.insert(key);
        }

        p.deletes.extend(batch_deletes);
        p.pairs.extend(batch_pairs);
        p.batches.push(UpdateBatch {
            delete: delete.iter().map(|&d| EdgeId::new(d as usize)).collect(),
            insert: insert
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect(),
        });
        p.admitted += 1;
        let ticket = p.admitted;
        let queued = p.batches.len() as u32;
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        Response::Submitted { ticket, queued }
    }

    fn reject(&self, code: RejectCode, detail: String) -> Response {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        Response::Rejected { code, detail }
    }

    /// Applies every admitted batch as one coalesced repair. Returns `true`
    /// if a tick ran (there was pending work).
    pub fn tick(&self) -> bool {
        let _w = lock(&self.writer);
        self.tick_locked()
    }

    /// Tick body; caller holds the writer mutex.
    fn tick_locked(&self) -> bool {
        let (batch, count) = {
            let mut p = lock(&self.pending);
            if p.batches.is_empty() {
                return false;
            }
            let mut delete = Vec::new();
            let mut insert = Vec::new();
            let count = p.batches.len();
            for b in p.batches.drain(..) {
                delete.extend(b.delete);
                insert.extend(b.insert);
            }
            let deletes = std::mem::take(&mut p.deletes);
            p.in_flight_deletes.extend(deletes);
            let pairs = std::mem::take(&mut p.pairs);
            p.in_flight_pairs.extend(pairs);
            (UpdateBatch { delete, insert }, count)
        };

        let cur = self.state_snapshot();
        let mut dg = cur.dg.clone();
        let mut stab = cur.stab.clone();
        let started = Instant::now();
        let repaired = dg
            .apply(&batch)
            .map_err(|e| e.to_string())
            .and_then(|diff| {
                stab.repair(&dg, &diff, &cur.ids, &self.params)
                    .map_err(|e| e.to_string())
            });
        match repaired {
            Ok(report) => {
                // Certify (and, if anything were ever inconsistent, heal)
                // through the self-stabilization layer before publishing.
                let stabilized = stab.stabilize(&dg, &report.touched, &cur.ids, &self.params);
                let elapsed = started.elapsed();
                self.counters.ticks.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .coalesced_batches
                    .fetch_add(count as u64, Ordering::Relaxed);
                self.counters
                    .repaired_edges
                    .fetch_add(report.repaired_edges as u64, Ordering::Relaxed);
                self.counters
                    .full_recolors
                    .fetch_add(u64::from(report.full_recolor), Ordering::Relaxed);
                match stabilized {
                    Ok(srep) => {
                        self.counters.stabilizations.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .conflicts_found
                            .fetch_add(srep.conflicts_found as u64, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.counters
                            .internal_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                lock(&self.repair_hist).record(elapsed);
                lock(&self.batch_log).push((cur.epoch, batch));
                let next = Arc::new(EpochState {
                    epoch: cur.epoch,
                    version: cur.version + 1,
                    dg,
                    stab,
                    ids: cur.ids.clone(),
                });
                self.publish(next, count as u64);
            }
            Err(_) => {
                // Admission control makes this unreachable; account for the
                // dropped batch so flushes still terminate and the failure
                // is visible in `internal_errors`.
                self.counters
                    .internal_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.publish(cur, count as u64);
            }
        }
        true
    }

    /// Publishes `next` as the current generation and clears in-flight
    /// bookkeeping, under the pending lock so admissions never observe a
    /// half-updated (state, in-flight) pair.
    fn publish(&self, next: Arc<EpochState>, applied: u64) {
        {
            let mut p = lock(&self.pending);
            let mut st = self.state.write().unwrap_or_else(|e| e.into_inner());
            *st = next;
            p.in_flight_deletes.clear();
            p.in_flight_pairs.clear();
            p.applied += applied;
        }
        self.drained.notify_all();
    }

    /// Applies every batch admitted before this call, then reports the
    /// resulting version. Concurrent ticks count toward the target.
    pub fn flush(&self) -> Response {
        let target = lock(&self.pending).admitted;
        loop {
            {
                let p = lock(&self.pending);
                if p.applied >= target {
                    break;
                }
            }
            if !self.tick() {
                // Another writer holds the in-flight work; wait for its
                // publish instead of spinning.
                let p = lock(&self.pending);
                if p.applied >= target {
                    break;
                }
                let _ = self
                    .drained
                    .wait_timeout(p, Duration::from_millis(10))
                    .map(|(_, _)| ());
            }
        }
        let st = self.state_snapshot();
        Response::Flushed {
            epoch: st.epoch,
            version: st.version,
            ticks: self.counters.ticks.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of this tenant's counters and latency histograms.
    /// `protocol_errors` is connection-level state owned by the registry
    /// and is passed in for the report.
    pub fn metrics(&self, protocol_errors: u64) -> MetricsReport {
        let st = self.state_snapshot();
        let queue_depth = self.queue_depth() as u64;
        let c = &self.counters;
        MetricsReport {
            epoch: st.epoch,
            version: st.version,
            n: st.dg.n() as u64,
            m: st.dg.m() as u64,
            max_degree: st.dg.graph().max_degree() as u64,
            palette: st.stab.palette() as u64,
            queue_depth,
            lookups: c.lookups.load(Ordering::Relaxed),
            lookup_hits: c.lookup_hits.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            ticks: c.ticks.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            repaired_edges: c.repaired_edges.load(Ordering::Relaxed),
            full_recolors: c.full_recolors.load(Ordering::Relaxed),
            stabilizations: c.stabilizations.load(Ordering::Relaxed),
            conflicts_found: c.conflicts_found.load(Ordering::Relaxed),
            swaps: c.swaps.load(Ordering::Relaxed),
            swaps_rejected: c.swaps_rejected.load(Ordering::Relaxed),
            protocol_errors,
            repair: *lock(&self.repair_hist),
            lookup: *lock(&self.lookup_hist),
        }
    }

    /// Palette introspection off the pinned current generation.
    pub fn palette(&self) -> Response {
        let st = self.state_snapshot();
        Response::Palette {
            epoch: st.epoch,
            palette: st.stab.palette() as u64,
            max_degree: st.dg.graph().max_degree() as u64,
            colors_used: st.coloring().colors_used() as u64,
        }
    }

    /// Partitions the current graph with the shard substrate and reports
    /// the cut. Built on demand — the daemon serves colors, not shards, so
    /// nothing is cached across epochs.
    pub fn shards(&self, shards: u32) -> Response {
        let st = self.state_snapshot();
        let wanted = shards.clamp(1, 1 << 16) as usize;
        let report = bfs_partition(st.dg.graph(), wanted).report(st.dg.graph());
        Response::Shards {
            shards: report.shards as u32,
            cut_edges: report.cut_edges as u64,
            cut_fraction: report.cut_fraction,
            balance_factor: report.balance_factor,
        }
    }

    /// Hot-swaps the served snapshot: quiesce admissions, apply what was
    /// already admitted, open + validate the new snapshot, publish it under
    /// `epoch + 1`. Any failure leaves the old generation serving. Scoped
    /// to this tenant — other graphs keep serving throughout.
    pub fn swap(&self, path: &str) -> Response {
        if self.swapping.swap(true, Ordering::SeqCst) {
            self.counters.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::SwapRejected {
                detail: "another swap is in progress".into(),
            };
        }
        let resp = self.swap_quiesced(path);
        self.swapping.store(false, Ordering::SeqCst);
        resp
    }

    fn swap_quiesced(&self, path: &str) -> Response {
        let _w = lock(&self.writer);
        // Drain everything admitted before the flag went up; the flag stops
        // new admissions, so this terminates.
        while self.tick_locked() {}

        let rejected = |detail: String| {
            self.counters.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            Response::SwapRejected { detail }
        };
        let loaded = match Snapshot::open(path).and_then(|s| LoadedSnapshot::load(&s)) {
            Ok(l) => l,
            Err(e) => return rejected(e.to_string()),
        };
        let coloring = loaded.coloring().cloned();
        let dg = match loaded.into_dynamic() {
            Ok(d) => d,
            Err(e) => return rejected(e.to_string()),
        };
        let ids = Arc::new(IdAssignment::scattered(dg.n(), self.config.id_seed));
        let session = session_for(&dg, coloring, &ids, &self.params, self.config.headroom);
        let (rec, _) = match session {
            Ok(s) => s,
            Err(e) => return rejected(e.to_string()),
        };
        let mut stab = SelfStabilizing::new(rec);
        if let Some(period) = self.config.full_sweep_every {
            stab = stab.with_full_sweep_every(period);
        }

        let cur = self.state_snapshot();
        let (epoch, n, m) = (cur.epoch + 1, dg.n() as u64, dg.m() as u64);
        let next = Arc::new(EpochState {
            epoch,
            version: 0,
            dg,
            stab,
            ids,
        });
        self.publish(next, 0);
        self.counters.swaps.fetch_add(1, Ordering::Relaxed);
        Response::Swapped { epoch, n, m }
    }
}

/// The shared serving core: a boot-time registry of [`Tenant`]s routed by
/// the dense `graph_id` of the v2 frame header, plus the connection-level
/// `protocol_errors` counter.
/// [`DaemonHandle`](crate::daemon::DaemonHandle) wraps it in an `Arc` and
/// drives it from connection threads; tests can drive it directly without
/// any sockets.
#[derive(Debug)]
pub struct ServerCore {
    tenants: Vec<Arc<Tenant>>,
    protocol_errors: AtomicU64,
}

impl ServerCore {
    /// Builds a single-tenant core over `graph` (named `default`) — the
    /// shape every v1 deployment had.
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn new(graph: Graph, config: ServeConfig) -> Result<Self, SetupError> {
        Ok(Self::from_tenants(vec![Tenant::new(
            "default", graph, config,
        )?]))
    }

    /// Builds a single-tenant core over an existing dynamic graph.
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn from_dynamic(
        dg: DynamicGraph,
        coloring: Option<EdgeColoring>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        Ok(Self::from_tenants(vec![Tenant::from_dynamic(
            "default", dg, coloring, config,
        )?]))
    }

    /// Builds a single-tenant core from a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SetupError::Snapshot`] if the file fails validation,
    /// [`SetupError::Coloring`] if the initial coloring run fails.
    pub fn from_snapshot_path(
        path: impl AsRef<Path>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        let name = path
            .as_ref()
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "default".into());
        Ok(Self::from_tenants(vec![Tenant::from_snapshot_path(
            name, path, config,
        )?]))
    }

    /// Builds a multi-tenant core. Tenant order fixes the `graph_id`
    /// assignment: `tenants[g]` answers frames routed to graph `g`, and
    /// tenant 0 is the v1 default graph.
    ///
    /// # Panics
    ///
    /// If `tenants` is empty — a daemon with no default graph cannot serve
    /// v1 connections.
    pub fn from_tenants(tenants: Vec<Tenant>) -> Self {
        assert!(
            !tenants.is_empty(),
            "a ServerCore needs at least one tenant"
        );
        ServerCore {
            tenants: tenants.into_iter().map(Arc::new).collect(),
            protocol_errors: AtomicU64::new(0),
        }
    }

    /// The tenant registry, in `graph_id` order.
    pub fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// The tenant serving `graph_id`, if it exists.
    pub fn tenant(&self, graph_id: u32) -> Option<&Arc<Tenant>> {
        self.tenants.get(graph_id as usize)
    }

    /// The default graph (id 0) every v1 connection is routed to.
    pub fn default_tenant(&self) -> &Arc<Tenant> {
        &self.tenants[0]
    }

    /// The served-graph catalog, in `graph_id` order.
    pub fn catalog(&self) -> Vec<GraphInfo> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(id, t)| t.info(id as u32))
            .collect()
    }

    /// The handshake answer: protocol version, the in-flight cap of the
    /// default tenant's config, and the catalog.
    pub fn welcome(&self) -> Response {
        Response::Welcome {
            version: crate::wire::PROTOCOL_VERSION,
            max_inflight: self.default_tenant().config().max_inflight,
            graphs: self.catalog(),
        }
    }

    /// Counts a malformed frame/payload (called by the transport layer).
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Malformed frames/payloads received, daemon-wide.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Internal apply/repair failures summed over every tenant (nonzero
    /// values mean a bug, never load).
    pub fn internal_errors(&self) -> u64 {
        self.tenants.iter().map(|t| t.internal_errors()).sum()
    }

    /// Routes one decoded request to the tenant serving `graph_id`.
    /// `Hello` answers the catalog regardless of the routing id; an
    /// out-of-range id answers a typed [`RejectCode::UnknownGraph`].
    pub fn handle_on(&self, graph_id: u32, req: &Request) -> Response {
        if let Request::Hello { version } = req {
            if *version != crate::wire::PROTOCOL_VERSION {
                return Response::ProtocolRejected {
                    detail: crate::error::ProtocolError::UnsupportedVersion {
                        requested: *version,
                        supported: crate::wire::PROTOCOL_VERSION,
                    }
                    .to_string(),
                };
            }
            return self.welcome();
        }
        match self.tenant(graph_id) {
            Some(t) => t.handle(req, self.protocol_errors()),
            None => Response::Rejected {
                code: RejectCode::UnknownGraph,
                detail: format!(
                    "graph id {graph_id} names no served graph ({} served)",
                    self.tenants.len()
                ),
            },
        }
    }

    /// Dispatches one decoded request with v1 semantics: routed to the
    /// default graph.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_on(0, req)
    }

    // -- default-tenant conveniences (v1 semantics; tests and bench) --------

    /// [`Tenant::state_snapshot`] on the default graph.
    pub fn state_snapshot(&self) -> Arc<EpochState> {
        self.default_tenant().state_snapshot()
    }

    /// [`Tenant::batch_log`] on the default graph.
    pub fn batch_log(&self) -> Vec<(u64, UpdateBatch)> {
        self.default_tenant().batch_log()
    }

    /// [`Tenant::queue_depth`] on the default graph.
    pub fn queue_depth(&self) -> usize {
        self.default_tenant().queue_depth()
    }

    /// [`Tenant::lookup`] on the default graph.
    pub fn lookup(&self, stable: u64) -> Response {
        self.default_tenant().lookup(stable)
    }

    /// [`Tenant::submit`] on the default graph.
    pub fn submit(&self, delete: &[u64], insert: &[(u32, u32)]) -> Response {
        self.default_tenant().submit(delete, insert)
    }

    /// [`Tenant::tick`] on the default graph.
    pub fn tick(&self) -> bool {
        self.default_tenant().tick()
    }

    /// [`Tenant::flush`] on the default graph.
    pub fn flush(&self) -> Response {
        self.default_tenant().flush()
    }

    /// [`Tenant::metrics`] on the default graph.
    pub fn metrics(&self) -> MetricsReport {
        self.default_tenant().metrics(self.protocol_errors())
    }

    /// [`Tenant::palette`] on the default graph.
    pub fn palette(&self) -> Response {
        self.default_tenant().palette()
    }

    /// [`Tenant::shards`] on the default graph.
    pub fn shards(&self, shards: u32) -> Response {
        self.default_tenant().shards(shards)
    }

    /// [`Tenant::swap`] on the default graph.
    pub fn swap(&self, path: &str) -> Response {
        self.default_tenant().swap(path)
    }

    /// The default tenant's configuration.
    pub fn config(&self) -> &ServeConfig {
        self.default_tenant().config()
    }

    /// The default tenant's coloring parameters.
    pub fn params(&self) -> &ColoringParams {
        self.default_tenant().params()
    }
}

/// Builds the recoloring session for a (possibly snapshot-carried) coloring:
/// adopt it when it passes the audit, otherwise color from scratch with the
/// configured headroom.
fn session_for(
    dg: &DynamicGraph,
    coloring: Option<EdgeColoring>,
    ids: &IdAssignment,
    params: &ColoringParams,
    headroom: usize,
) -> Result<(Recoloring, bool), SetupError> {
    let budget = default_palette(dg.graph().max_degree() + headroom);
    if let Some(col) = coloring {
        // A stored coloring may use more colors than the tight budget if it
        // was maintained with its own headroom; widen the audit budget to
        // whatever it actually uses (never below ours).
        let audit_budget = budget.max(col.palette_size());
        if let Ok(rec) = Recoloring::adopt(dg, col, audit_budget) {
            return Ok((rec, true));
        }
    }
    let (rec, _) = Recoloring::with_budget(dg, ids, params, budget)?;
    Ok((rec, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{check_complete, check_proper_edge_coloring};

    fn small_core() -> ServerCore {
        let config = ServeConfig {
            tick_interval_ms: None,
            ..ServeConfig::default()
        };
        ServerCore::new(generators::grid_torus(6, 6), config).unwrap()
    }

    #[test]
    fn lookup_hits_and_misses() {
        let core = small_core();
        match core.lookup(0) {
            Response::Color {
                epoch: 1,
                version: 0,
                outcome,
            } => {
                assert!(matches!(outcome, LookupOutcome::Colored { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match core.lookup(1 << 40) {
            Response::Color {
                outcome: LookupOutcome::Unknown,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        let metrics = core.metrics();
        assert_eq!(metrics.lookups, 2);
        assert_eq!(metrics.lookup_hits, 1);
        // Both lookups were timed into the service-time histogram.
        assert_eq!(metrics.lookup.count(), 2);
    }

    #[test]
    fn admission_rules_reject_typed() {
        let core = small_core();
        let reject_code = |resp: Response| match resp {
            Response::Rejected { code, .. } => code,
            other => panic!("expected a reject, got {other:?}"),
        };
        // Unknown stable id.
        assert_eq!(
            reject_code(core.submit(&[1 << 40], &[])),
            RejectCode::UnknownEdge
        );
        // Duplicate delete across submissions.
        assert!(matches!(core.submit(&[0], &[]), Response::Submitted { .. }));
        assert_eq!(reject_code(core.submit(&[0], &[])), RejectCode::UnknownEdge);
        // Out-of-range and self-loop inserts.
        assert_eq!(
            reject_code(core.submit(&[], &[(0, 999)])),
            RejectCode::NodeOutOfRange
        );
        assert_eq!(
            reject_code(core.submit(&[], &[(3, 3)])),
            RejectCode::SelfLoop
        );
        // Inserting the pair of a live edge (one NOT pending deletion) is a
        // duplicate. Query stable id 2's endpoints so the pair can't collide
        // with the delete of stable id 0 queued above.
        let st = core.state_snapshot();
        let live = st.dynamic().internal_id(EdgeId::new(2)).unwrap();
        let (lu, lv) = st.dynamic().graph().endpoints(live);
        assert_eq!(
            reject_code(core.submit(&[], &[(lu.index() as u32, lv.index() as u32)])),
            RejectCode::DuplicateEdge
        );
        // (0,7) is not a torus edge of the 6×6 grid torus: admitted once,
        // duplicate the second time.
        assert!(matches!(
            core.submit(&[], &[(0, 7)]),
            Response::Submitted { .. }
        ));
        assert_eq!(
            reject_code(core.submit(&[], &[(0, 7)])),
            RejectCode::DuplicateEdge
        );
        // Deleting a live edge frees its pair for reinsertion in the same
        // coalesced tick.
        let live_pair_sid = 1u64; // stable id 1 exists; find its endpoints
        let st = core.state_snapshot();
        let e = st
            .dynamic()
            .internal_id(EdgeId::new(live_pair_sid as usize))
            .unwrap();
        let (u, v) = st.dynamic().graph().endpoints(e);
        assert!(matches!(
            core.submit(&[live_pair_sid], &[(u.index() as u32, v.index() as u32)]),
            Response::Submitted { .. }
        ));
        assert!(core.tick());
        let st = core.state_snapshot();
        check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
        check_complete(st.dynamic().graph(), st.coloring()).assert_ok();
        assert_eq!(core.internal_errors(), 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let config = ServeConfig {
            tick_interval_ms: None,
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let core = ServerCore::new(generators::grid_torus(6, 6), config).unwrap();
        assert!(matches!(
            core.submit(&[], &[(0, 7)]),
            Response::Submitted { .. }
        ));
        assert!(matches!(
            core.submit(&[], &[(1, 8)]),
            Response::Submitted { .. }
        ));
        match core.submit(&[], &[(2, 9)]) {
            Response::Rejected {
                code: RejectCode::QueueFull,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        // A tick drains the queue and capacity frees up.
        assert!(core.tick());
        assert!(matches!(
            core.submit(&[], &[(2, 9)]),
            Response::Submitted { .. }
        ));
        match core.flush() {
            Response::Flushed {
                epoch: 1,
                version: 2,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_and_introspection_track_work() {
        let core = small_core();
        assert!(matches!(
            core.submit(&[0, 1], &[(0, 7), (1, 8)]),
            Response::Submitted { .. }
        ));
        core.flush();
        let m = core.metrics();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.version, 1);
        assert_eq!(m.ticks, 1);
        assert_eq!(m.coalesced_batches, 1);
        assert_eq!(m.accepted, 1);
        assert_eq!(m.repaired_edges, 2);
        assert_eq!(m.full_recolors, 0);
        assert_eq!(m.conflicts_found, 0);
        assert_eq!(m.m, 72);
        // One tick → one repair histogram sample, with ordered quantiles.
        assert_eq!(m.repair.count(), 1);
        assert!(m.repair.p50_ms() >= 0.0 && m.repair.p95_ms() >= m.repair.p50_ms());
        assert!(m.repair.p999_ms() >= m.repair.p99_ms());
        match core.palette() {
            Response::Palette {
                palette,
                max_degree,
                colors_used,
                ..
            } => {
                // The mutation shifted degrees; Δ stays within the diagonal
                // bound the loadgen documents.
                assert!((4..=6).contains(&max_degree));
                assert!(palette >= 2 * max_degree - 1);
                assert!(colors_used <= palette);
            }
            other => panic!("unexpected {other:?}"),
        }
        match core.shards(4) {
            Response::Shards {
                shards: 4,
                cut_edges,
                balance_factor,
                ..
            } => {
                assert!(cut_edges > 0);
                assert!(balance_factor >= 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(core.batch_log().len(), 1);
    }

    #[test]
    fn registry_routes_by_graph_id_with_typed_unknown_graph() {
        let config = ServeConfig {
            tick_interval_ms: None,
            ..ServeConfig::default()
        };
        let core = ServerCore::from_tenants(vec![
            Tenant::new("alpha", generators::grid_torus(6, 6), config.clone()).unwrap(),
            Tenant::new("beta", generators::grid_torus(4, 4), config).unwrap(),
        ]);
        // Independent admission: the same non-edge pair is admitted on both.
        assert!(matches!(
            core.handle_on(
                0,
                &Request::Submit {
                    delete: vec![],
                    insert: vec![(0, 7)]
                }
            ),
            Response::Submitted { .. }
        ));
        assert!(matches!(
            core.handle_on(
                1,
                &Request::Submit {
                    delete: vec![],
                    insert: vec![(0, 6)]
                }
            ),
            Response::Submitted { .. }
        ));
        // Flushing graph 1 leaves graph 0's queue untouched.
        assert!(matches!(
            core.handle_on(1, &Request::Flush),
            Response::Flushed { version: 1, .. }
        ));
        assert_eq!(core.tenants()[0].queue_depth(), 1);
        // Out-of-range graph ids reject typed, charging no tenant.
        match core.handle_on(9, &Request::Metrics) {
            Response::Rejected {
                code: RejectCode::UnknownGraph,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(core.tenants()[0].metrics(0).rejected, 0);
        assert_eq!(core.tenants()[1].metrics(0).rejected, 0);
        // The catalog names both tenants in graph-id order.
        match core.welcome() {
            Response::Welcome {
                version, graphs, ..
            } => {
                assert_eq!(version, crate::wire::PROTOCOL_VERSION);
                assert_eq!(graphs.len(), 2);
                assert_eq!((graphs[0].id, graphs[0].name.as_str()), (0, "alpha"));
                assert_eq!((graphs[1].id, graphs[1].name.as_str()), (1, "beta"));
                assert_eq!(graphs[1].n, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A Hello for a version we don't speak is a typed protocol reject.
        match core.handle_on(0, &Request::Hello { version: 99 }) {
            Response::ProtocolRejected { detail } => assert!(detail.contains("99")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adopting_a_stored_coloring_skips_the_initial_run() {
        let g = generators::grid_torus(6, 6);
        let dg = DynamicGraph::from_graph(g);
        let ids = Arc::new(IdAssignment::scattered(dg.n(), 1));
        let params = ColoringParams::new(0.5);
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let stored = rec.coloring().clone();
        let (adopted, was_adopted) =
            session_for(&dg, Some(stored.clone()), &ids, &params, 2).unwrap();
        assert!(was_adopted);
        assert_eq!(adopted.coloring(), &stored);
        // A corrupt coloring fails the audit and falls back to a fresh run.
        let mut corrupt = stored;
        corrupt.unset(EdgeId::new(0));
        let (fresh, was_adopted) = session_for(&dg, Some(corrupt), &ids, &params, 2).unwrap();
        assert!(!was_adopted);
        check_complete(dg.graph(), fresh.coloring()).assert_ok();
    }
}
