//! Graph generators for the experiment suite.
//!
//! The paper targets "large networks where the node degrees might be
//! independent or almost independent of the network size", so the experiment
//! suite needs families in which the maximum degree Δ and the number of nodes
//! `n` can be varied independently. All randomized generators take an explicit
//! seed and are fully deterministic given the seed.

use crate::bipartite::BipartiteGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::Side;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Returns a deterministic RNG for the given seed.
fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph edges are valid")
}

/// The complete bipartite graph `K_{a,b}` with sides `{0..a}` and `{a..a+b}`.
pub fn complete_bipartite(a: usize, b: usize) -> BipartiteGraph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    let g = Graph::from_edges(a + b, &edges).expect("complete bipartite edges are valid");
    let sides = (0..a + b)
        .map(|i| if i < a { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides).expect("bipartition is valid by construction")
}

/// The path graph on `n` nodes (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// The cycle graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// The star graph with one center (node 0) and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..leaves).map(|i| (0, i + 1)).collect();
    Graph::from_edges(leaves + 1, &edges).expect("star edges are valid")
}

/// The `dim`-dimensional hypercube (`2^dim` nodes, degree `dim`).
pub fn hypercube(dim: usize) -> Graph {
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube edges are valid")
}

/// The `rows × cols` grid torus (wrap-around grid): every node has degree 4,
/// so the graph has exactly `2 · rows · cols` edges. Deterministic, and cheap
/// enough to build million-edge instances for the scale experiments.
///
/// # Panics
///
/// Panics if either dimension is smaller than 3 (wrap-around edges would
/// collapse into duplicates or self-loops).
pub fn grid_torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "a grid torus needs both dimensions at least 3"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("torus edges are valid")
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid")
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer-like
/// attachment: node `i` attaches to a uniformly random earlier node).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        edges.push((parent, v));
    }
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// The Erdős–Rényi random graph `G(n, p)`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("ER edges are valid")
}

/// A random bipartite graph with `a + b` nodes where each of the `a·b`
/// possible edges is present independently with probability `p`.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..a {
        for v in 0..b {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, a + v));
            }
        }
    }
    let g = Graph::from_edges(a + b, &edges).expect("random bipartite edges are valid");
    let sides = (0..a + b)
        .map(|i| if i < a { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides).expect("bipartition is valid by construction")
}

/// A `d`-regular bipartite graph on `n + n` nodes built from `d` edge-disjoint
/// perfect matchings.
///
/// The matchings are `u ↦ π((u + o_j) mod n)` for a random permutation `π`
/// and `d` distinct random offsets `o_j`, which guarantees simplicity for any
/// `d ≤ n` while still randomizing the structure (the special case of `π`
/// being the identity is [`circulant_bipartite`]).
///
/// # Errors
///
/// Returns an error if `d > n` (no simple `d`-regular bipartite graph exists).
pub fn regular_bipartite(n: usize, d: usize, seed: u64) -> Result<BipartiteGraph, GraphError> {
    if d > n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("cannot build a {d}-regular bipartite graph with {n} nodes per side"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut offsets: Vec<usize> = (0..n).collect();
    offsets.shuffle(&mut rng);
    offsets.truncate(d);
    let mut edges = Vec::with_capacity(n * d);
    for &offset in &offsets {
        for u in 0..n {
            edges.push((u, n + perm[(u + offset) % n]));
        }
    }
    let g = Graph::from_edges(2 * n, &edges)?;
    let sides = (0..2 * n)
        .map(|i| if i < n { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides)
}

/// The circulant `d`-regular bipartite graph: `u_i` is connected to
/// `v_{(i + j) mod n}` for `j = 0, ..., d-1`. Deterministic.
pub fn circulant_bipartite(n: usize, d: usize) -> Result<BipartiteGraph, GraphError> {
    if d > n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!(
                "cannot build a {d}-regular circulant bipartite graph with {n} nodes per side"
            ),
        });
    }
    let mut edges = Vec::with_capacity(n * d);
    for u in 0..n {
        for j in 0..d {
            edges.push((u, n + (u + j) % n));
        }
    }
    let g = Graph::from_edges(2 * n, &edges)?;
    let sides = (0..2 * n)
        .map(|i| if i < n { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides)
}

/// A random (approximately) `d`-regular graph via the configuration model
/// with rejection of self loops and parallel edges.
///
/// The result is simple and has maximum degree at most `d`; a small number of
/// stubs may remain unmatched, so minimum degree can be `d - O(1)`.
///
/// # Errors
///
/// Returns an error if `n·d` is odd or `d ≥ n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: "n*d must be even".to_string(),
        });
    }
    if d >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("degree {d} must be smaller than n = {n}"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    // Repeatedly shuffle the multiset of stubs and pair consecutive entries,
    // keeping only pairs that form new simple edges; iterate on the leftovers.
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    for _round in 0..60 {
        if stubs.len() < 2 {
            break;
        }
        stubs.shuffle(&mut rng);
        let mut leftovers = Vec::new();
        let mut i = 0;
        while i + 1 < stubs.len() {
            let (u, v) = (stubs[i], stubs[i + 1]);
            let key = (u.min(v), u.max(v));
            if u != v && !present.contains(&key) {
                present.insert(key);
                edges.push(key);
            } else {
                leftovers.push(u);
                leftovers.push(v);
            }
            i += 2;
        }
        if i < stubs.len() {
            leftovers.push(stubs[i]);
        }
        stubs = leftovers;
    }
    Graph::from_edges(n, &edges)
}

/// A Chung–Lu style power-law random graph with exponent `gamma` and maximum
/// expected degree `max_degree`.
///
/// Each potential edge `{u, v}` is present independently with probability
/// `min(1, w_u w_v / Σw)` for the expected degree sequence
/// `w_i = max_degree · (i+1)^{−1/(γ−1)}` (floored at 1). The sampler uses the
/// Miller–Hagberg geometric-skipping algorithm over the non-increasing weight
/// sequence, so generation costs `O(n + m)` expected time instead of the
/// naive `O(n²)` coin flips — million-edge instances are practical.
pub fn power_law(n: usize, gamma: f64, max_degree: usize, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    // Expected degree sequence w_i = max_degree * (i+1)^{-1/(gamma-1)},
    // non-increasing in i.
    let exponent = 1.0 / (gamma - 1.0).max(1e-9);
    let weights: Vec<f64> = (0..n)
        .map(|i| (max_degree as f64) * ((i + 1) as f64).powf(-exponent))
        .map(|w| w.max(1.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut edges = Vec::new();
    for u in 0..n {
        // Walk candidates v = u+1, u+2, ... with geometric skips: `p` is the
        // acceptance probability of the previous candidate, an upper bound on
        // every later candidate's probability because the weights are sorted
        // non-increasingly; each skipped-to candidate is accepted with the
        // exact ratio q/p.
        let mut v = u + 1;
        if v >= n {
            break;
        }
        let mut p = (weights[u] * weights[v] / total).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                if !skip.is_finite() || skip >= (n - v) as f64 {
                    break;
                }
                v += skip as usize;
            }
            let q = (weights[u] * weights[v] / total).min(1.0);
            if rng.gen::<f64>() < q / p {
                edges.push((u, v));
            }
            p = q;
            v += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("power-law edges are valid")
}

/// The graph families used by the experiment harness (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Random `d`-regular bipartite graphs.
    RegularBipartite,
    /// Erdős–Rényi `G(n, p)` graphs.
    ErdosRenyi,
    /// Chung–Lu power-law graphs.
    PowerLaw,
    /// Hypercubes.
    Hypercube,
    /// Uniformly random trees.
    RandomTree,
    /// Two-dimensional grids.
    Grid,
    /// Wrap-around grids (4-regular tori).
    GridTorus,
}

impl Family {
    /// All families, in a fixed order.
    pub fn all() -> [Family; 7] {
        [
            Family::RegularBipartite,
            Family::ErdosRenyi,
            Family::PowerLaw,
            Family::Hypercube,
            Family::RandomTree,
            Family::Grid,
            Family::GridTorus,
        ]
    }

    /// A short human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::RegularBipartite => "regular-bipartite",
            Family::ErdosRenyi => "erdos-renyi",
            Family::PowerLaw => "power-law",
            Family::Hypercube => "hypercube",
            Family::RandomTree => "random-tree",
            Family::Grid => "grid",
            Family::GridTorus => "grid-torus",
        }
    }

    /// Generates a member of the family sized so that the maximum degree is
    /// close to `target_delta` and the node count close to `target_n`.
    pub fn generate(&self, target_n: usize, target_delta: usize, seed: u64) -> Graph {
        match self {
            Family::RegularBipartite => {
                let per_side = (target_n / 2).max(target_delta.max(2));
                regular_bipartite(per_side, target_delta.max(1), seed)
                    .expect("feasible by construction")
                    .into_parts()
                    .0
            }
            Family::ErdosRenyi => {
                let n = target_n.max(4);
                let p = (target_delta as f64 / n as f64).min(1.0);
                erdos_renyi(n, p, seed)
            }
            Family::PowerLaw => power_law(target_n.max(4), 2.5, target_delta.max(2), seed),
            Family::Hypercube => {
                let dim = target_delta.clamp(1, 16);
                hypercube(dim)
            }
            Family::RandomTree => random_tree(target_n.max(2), seed),
            Family::Grid => {
                let side = (target_n as f64).sqrt().ceil() as usize;
                grid(side.max(2), side.max(2))
            }
            Family::GridTorus => {
                let side = (target_n as f64).sqrt().ceil() as usize;
                grid_torus(side.max(3), side.max(3))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn complete_graph_counts() {
        let g = complete_graph(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.max_edge_degree(), 8);
    }

    #[test]
    fn complete_bipartite_counts() {
        let bg = complete_bipartite(3, 4);
        assert_eq!(bg.graph().n(), 7);
        assert_eq!(bg.graph().m(), 12);
        assert_eq!(bg.u_count(), 3);
        assert_eq!(bg.v_count(), 4);
    }

    #[test]
    fn path_cycle_star() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        let s = star(7);
        assert_eq!(s.max_degree(), 7);
        assert_eq!(s.degree(NodeId::new(0)), 7);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn hypercube_regularity() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.bipartition().is_some());
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(64, 7);
        assert_eq!(g.m(), 63);
        assert_eq!(g.connected_components(), 1);
        assert!(g.bipartition().is_some());
    }

    #[test]
    fn erdos_renyi_determinism() {
        let a = erdos_renyi(40, 0.2, 11);
        let b = erdos_renyi(40, 0.2, 11);
        let c = erdos_renyi(40, 0.2, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        assert_eq!(erdos_renyi(10, 0.0, 1).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn regular_bipartite_is_regular() {
        let bg = regular_bipartite(16, 5, 3).unwrap();
        let g = bg.graph();
        assert_eq!(g.n(), 32);
        assert_eq!(g.m(), 16 * 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn regular_bipartite_rejects_excess_degree() {
        assert!(regular_bipartite(4, 5, 0).is_err());
    }

    #[test]
    fn circulant_bipartite_is_regular_and_deterministic() {
        let a = circulant_bipartite(10, 4).unwrap();
        let b = circulant_bipartite(10, 4).unwrap();
        assert_eq!(a, b);
        for v in a.graph().nodes() {
            assert_eq!(a.graph().degree(v), 4);
        }
    }

    #[test]
    fn random_regular_close_to_regular() {
        let g = random_regular(50, 6, 5).unwrap();
        assert!(g.max_degree() <= 6);
        // at least 95% of the target edges should be realized
        assert!(g.m() * 100 >= 50 * 6 / 2 * 95);
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn power_law_respects_max_degree_roughly() {
        let g = power_law(200, 2.5, 20, 9);
        assert!(g.max_degree() <= 200);
        assert!(g.m() > 0);
    }

    #[test]
    fn power_law_is_deterministic_and_skewed() {
        let a = power_law(300, 2.5, 24, 5);
        let b = power_law(300, 2.5, 24, 5);
        assert_eq!(a, b);
        let c = power_law(300, 2.5, 24, 6);
        assert_ne!(a, c);
        // The heaviest node (index 0) should out-degree the lightest ones.
        let head = a.degree(NodeId::new(0));
        let tail_max = (250..300).map(|v| a.degree(NodeId::new(v))).max().unwrap();
        assert!(
            head > tail_max,
            "head degree {head} not above tail degree {tail_max}"
        );
    }

    #[test]
    fn power_law_edge_count_tracks_expectation() {
        // Expected m = Σ_{u<v} min(1, w_u w_v / Σw) ≈ Σw / 2 when no pair
        // saturates; check the sampled count is within a loose factor.
        let n = 2000;
        let g = power_law(n, 2.5, 16, 3);
        let exponent = 1.0 / 1.5;
        let total: f64 = (0..n)
            .map(|i| (16.0 * ((i + 1) as f64).powf(-exponent)).max(1.0))
            .sum();
        let expected = total / 2.0;
        assert!(
            (g.m() as f64) > expected * 0.6 && (g.m() as f64) < expected * 1.6,
            "m = {} far from expectation {expected:.0}",
            g.m()
        );
    }

    #[test]
    fn grid_torus_is_four_regular_with_exact_edge_count() {
        let g = grid_torus(5, 7);
        assert_eq!(g.n(), 35);
        assert_eq!(g.m(), 2 * 35);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        // Smallest legal torus.
        let t = grid_torus(3, 3);
        assert_eq!(t.m(), 18);
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn grid_torus_rejects_thin_dimensions() {
        grid_torus(2, 10);
    }

    #[test]
    fn family_generate_produces_graphs() {
        for family in Family::all() {
            let g = family.generate(64, 6, 42);
            assert!(g.n() > 0, "family {} produced empty graph", family.name());
            assert!(!family.name().is_empty());
        }
    }
}
