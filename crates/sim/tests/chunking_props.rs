//! Property tests for the degree-weighted chunk geometry and the delivery
//! contract built on top of it.
//!
//! The flat-arena delivery path cuts every round's per-node work into
//! [`Chunks::degree_weighted`] ranges, so two families of properties guard
//! it:
//!
//! 1. **Geometry** — for any degree sequence the chunks partition `0..n`
//!    exactly (no gaps, no overlaps, no empty chunks), and `chunk_of` is the
//!    exact inverse of `range`.
//! 2. **Bit-identity** — on skewed power-law graphs (the workload the
//!    degree-weighted cut exists for) `Parallel { threads }` and
//!    `Sharded { shards, threads }` produce mailboxes, metrics and program
//!    outputs bit-identical to `Sequential`, chunk geometry notwithstanding.

use distgraph::{generators, EdgeId, Graph, NodeId};
use distsim::{
    run_program, run_program_with, Chunks, ExecutionPolicy, IdAssignment, Incoming, Model, Network,
    NodeCtx, NodeProgram, Step,
};
use proptest::prelude::*;

/// CSR offsets for a synthetic degree sequence.
fn offsets_of(degrees: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in degrees {
        acc += d;
        offsets.push(acc);
    }
    offsets
}

/// Degree sequences with heavy skew mixed in: most nodes small, roughly one
/// in five a hub two orders of magnitude heavier.
fn arb_degrees() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec((0u8..5, 0usize..8, 64usize..2048), 0..96).prop_map(|items| {
        items
            .into_iter()
            .map(|(pick, small, hub)| if pick == 0 { hub } else { small })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The degree-weighted geometry partitions `0..n` exactly: ranges are
    /// contiguous, disjoint, in order, never empty (for `n > 0`), and their
    /// concatenation is precisely `0..n`.
    #[test]
    fn degree_weighted_chunks_cover_the_range_exactly(
        (degrees, requested) in (arb_degrees(), 1usize..12)
    ) {
        let n = degrees.len();
        let offsets = offsets_of(&degrees);
        let chunks = Chunks::degree_weighted(n, &offsets, requested);
        prop_assert_eq!(chunks.count(), requested.min(n.max(1)));
        prop_assert_eq!(chunks.len(), n);
        let mut next = 0usize;
        for c in 0..chunks.count() {
            let range = chunks.range(c);
            prop_assert_eq!(range.start, next, "chunk {} is contiguous", c);
            if n > 0 {
                prop_assert!(!range.is_empty(), "chunk {} must not be empty", c);
            }
            next = range.end;
        }
        prop_assert_eq!(next, n, "chunks end exactly at n");
    }

    /// `chunk_of` inverts `range`: every item of every chunk's range maps
    /// back to that chunk, for both geometries.
    #[test]
    fn chunk_of_inverts_range(
        (degrees, requested) in (arb_degrees(), 1usize..12)
    ) {
        let n = degrees.len();
        let offsets = offsets_of(&degrees);
        for chunks in [
            Chunks::degree_weighted(n, &offsets, requested),
            Chunks::new(n, requested),
        ] {
            for c in 0..chunks.count() {
                for item in chunks.range(c) {
                    prop_assert_eq!(chunks.chunk_of(item), c);
                }
            }
        }
    }

    /// On a real graph the geometry cut from `Graph::csr_offsets` matches the
    /// one cut from a hand-built prefix sum of the degree sequence — the
    /// graph accessor is exactly the CSR the chunker documents.
    #[test]
    fn graph_offsets_agree_with_the_degree_sequence(
        (n, gamma_mil, seed, requested) in (2usize..64, 1500u64..3200, 0u64..500, 1usize..8)
    ) {
        let g = generators::power_law(n, gamma_mil as f64 / 1000.0, n, seed);
        let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let from_graph = Chunks::degree_weighted(g.n(), g.csr_offsets(), requested);
        let from_degrees = Chunks::degree_weighted(g.n(), &offsets_of(&degrees), requested);
        prop_assert_eq!(from_graph.count(), from_degrees.count());
        for c in 0..from_graph.count() {
            prop_assert_eq!(from_graph.range(c), from_degrees.range(c));
        }
    }
}

/// Skewed graphs for the bit-identity battery: power-law degree sequences
/// whose hubs make count-balanced chunks maximally unbalanced.
fn arb_power_law() -> impl Strategy<Value = Graph> {
    (6usize..48, 1500u64..3000, 0u64..1000).prop_map(|(n, gamma_mil, seed)| {
        generators::power_law(n, gamma_mil as f64 / 1000.0, n, seed)
    })
}

const POLICY_MATRIX: [ExecutionPolicy; 5] = [
    ExecutionPolicy::Parallel { threads: 2 },
    ExecutionPolicy::Parallel { threads: 3 },
    ExecutionPolicy::Parallel { threads: 8 },
    ExecutionPolicy::Sharded {
        shards: 2,
        threads: 2,
    },
    ExecutionPolicy::Sharded {
        shards: 3,
        threads: 8,
    },
];

/// Flooding with a staggered halting schedule (stresses halted-node and
/// inbox bookkeeping across chunk boundaries).
struct StaggeredFlood {
    best: u64,
    budget: u32,
}

impl NodeProgram for StaggeredFlood {
    type Msg = u64;
    type Output = (u64, u32);

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        self.best = ctx.id;
        ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, (u64, u32)> {
        for m in inbox {
            self.best = self.best.max(m.msg);
        }
        if self.budget == 0 {
            return Step::Halt((self.best, ctx.degree as u32));
        }
        self.budget -= 1;
        Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Broadcast and a skewed-payload `exchange_sync` on power-law graphs:
    /// mailboxes and metrics are bit-identical to sequential under every
    /// parallel and sharded policy.
    #[test]
    fn power_law_exchanges_are_bit_identical((g, seed) in (arb_power_law(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let send = |v: NodeId| -> Vec<(EdgeId, Vec<u64>)> {
            g.neighbors(v)
                .iter()
                .filter(|nb| !(v.index() * 5 + nb.edge.index() + seed as usize).is_multiple_of(3))
                .map(|nb| {
                    let len = (nb.edge.index() + v.index()) % 4 + 1;
                    (nb.edge, vec![seed.wrapping_mul(v.index() as u64 + 1); len])
                })
                .collect()
        };
        let mut seq_net = Network::new(&g, Model::Local);
        let seq_bcast = seq_net.broadcast(|v| ids.id(v) ^ v.index() as u64);
        let seq_mail = seq_net.exchange_sync(send);
        for policy in POLICY_MATRIX {
            let mut net = Network::with_policy(&g, Model::Local, policy);
            let bcast = net.broadcast(|v| ids.id(v) ^ v.index() as u64);
            let mail = net.exchange_sync(send);
            prop_assert_eq!(&seq_bcast, &bcast, "{} broadcast", policy);
            prop_assert_eq!(&seq_mail, &mail, "{} exchange", policy);
            prop_assert_eq!(seq_net.metrics(), net.metrics(), "{} metrics", policy);
        }
    }

    /// The strict layer on power-law graphs: program outputs and metrics are
    /// bit-identical to sequential under every parallel and sharded policy.
    #[test]
    fn power_law_programs_are_bit_identical((g, seed) in (arb_power_law(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let budget_of = |v: NodeId| (v.index() as u32 + seed as u32) % 5;
        let reference = run_program(&g, &ids, Model::Local, 16, |v| StaggeredFlood {
            best: 0,
            budget: budget_of(v),
        });
        for policy in POLICY_MATRIX {
            let run = run_program_with(&g, &ids, Model::Local, policy, 16, |v| StaggeredFlood {
                best: 0,
                budget: budget_of(v),
            });
            prop_assert_eq!(&reference.outputs, &run.outputs, "{} outputs", policy);
            prop_assert_eq!(reference.metrics, run.metrics, "{} metrics", policy);
        }
    }
}
