//! Property battery for the BFS partitioner in isolation.
//!
//! Three invariants are checked on arbitrary simple graphs and shard counts:
//!
//! 1. **exactly-one ownership** — the shards' owned-edge sets partition the
//!    edge set (every edge lands in exactly one shard);
//! 2. **edge balance** — every shard owns at most `⌈m/k⌉ + Δ` edges, the
//!    bound guaranteed by the adaptive-target BFS growth (see
//!    `crates/shard/src/partition.rs`);
//! 3. **boundary symmetry** — for every shard pair, the boundary-edge set
//!    seen from either side is identical, covers exactly the cut, and each
//!    listed edge really has one endpoint in each shard.

use distgraph::{generators, Graph};
use distshard::{bfs_partition, ShardedGraph};
use proptest::prelude::*;

/// Random simple graph strategy: node count plus a sanitized edge list.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..48).prop_flat_map(|n| {
        let max_edges = n.saturating_sub(1) * n / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(160)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_edge_lands_in_exactly_one_shard((g, k) in (arb_graph(), 1usize..10)) {
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, k));
        let mut owner_count = vec![0usize; g.m()];
        for s in 0..sharded.shards() {
            for &e in sharded.owned_edges(s) {
                owner_count[e.index()] += 1;
                // Ownership is consistent with the partition rule.
                prop_assert_eq!(sharded.partition().owner(&g, e), s);
            }
        }
        prop_assert!(owner_count.iter().all(|&c| c == 1),
            "ownership counts {:?} are not all 1", owner_count);
        // The report agrees with the structure.
        let report = sharded.partition().report(&g);
        prop_assert_eq!(report.shard_owned_edges.iter().sum::<usize>(), g.m());
        prop_assert_eq!(report.shard_nodes.iter().sum::<usize>(), g.n());
    }

    #[test]
    fn balance_factor_stays_within_the_configured_bound((g, k) in (arb_graph(), 1usize..10)) {
        let partition = bfs_partition(&g, k);
        let report = partition.report(&g);
        // The partitioner's guarantee: ⌈m/k⌉ plus the one-node overshoot Δ.
        let bound_edges = g.m().div_ceil(k) + g.max_degree();
        let max_owned = report.shard_owned_edges.iter().copied().max().unwrap_or(0);
        prop_assert!(max_owned <= bound_edges,
            "shard owns {max_owned} > {bound_edges} edges (m={}, k={k}, Δ={})",
            g.m(), g.max_degree());
        // Same statement through the report's balance factor.
        if g.m() > 0 {
            let bound_factor = bound_edges as f64 / (g.m() as f64 / k as f64);
            prop_assert!(report.balance_factor <= bound_factor + 1e-9,
                "balance factor {} > {}", report.balance_factor, bound_factor);
            prop_assert!(report.balance_factor >= 1.0 - 1e-9);
        } else {
            prop_assert_eq!(report.balance_factor, 1.0);
        }
    }

    #[test]
    fn boundary_edge_sets_are_symmetric((g, k) in (arb_graph(), 1usize..10)) {
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, k));
        let kk = sharded.shards();
        let mut boundary_total = 0usize;
        for a in 0..kk {
            prop_assert!(sharded.boundary_edges(a, a).is_empty());
            for b in (a + 1)..kk {
                let ab = sharded.boundary_edges(a, b);
                let ba = sharded.boundary_edges(b, a);
                prop_assert!(ab == ba, "boundary ({a},{b}) differs from ({b},{a})");
                boundary_total += ab.len();
                for &e in ab {
                    let (u, v) = g.endpoints(e);
                    let su = sharded.partition().shard_of(u);
                    let sv = sharded.partition().shard_of(v);
                    prop_assert!((su.min(sv), su.max(sv)) == (a, b),
                        "{e} listed on pair ({a},{b}) but spans ({su},{sv})");
                }
            }
        }
        // The pairwise boundary sets cover the cut exactly once.
        prop_assert_eq!(boundary_total, sharded.cut_edges());
        let report = sharded.partition().report(&g);
        prop_assert_eq!(report.cut_edges, sharded.cut_edges());
    }

    #[test]
    fn partition_is_deterministic((g, k) in (arb_graph(), 1usize..10)) {
        prop_assert_eq!(bfs_partition(&g, k), bfs_partition(&g, k));
    }

    #[test]
    fn crossing_pairs_agree_with_boundary_sets((g, k) in (arb_graph(), 1usize..10)) {
        // The fault layer severs links by `crossing_pair`; it must name
        // exactly the pair whose boundary set lists the edge, and `None`
        // exactly for shard-internal edges.
        let sharded = ShardedGraph::new(&g, bfs_partition(&g, k));
        let partition = sharded.partition();
        let mut crossing = 0usize;
        for e in g.edges() {
            match partition.crossing_pair(&g, e) {
                None => {
                    let (u, v) = g.endpoints(e);
                    prop_assert_eq!(partition.shard_of(u), partition.shard_of(v));
                }
                Some((a, b)) => {
                    prop_assert!(a < b, "pair ({a},{b}) not normalized");
                    prop_assert!(
                        sharded.boundary_edges(a, b).contains(&e),
                        "{e} crosses ({a},{b}) but is missing from its boundary set"
                    );
                    crossing += 1;
                }
            }
        }
        prop_assert_eq!(crossing, sharded.cut_edges());
    }
}

/// The structured generator families used by the bench suite keep their cut
/// small and their balance tight — spot-check the quality, not just the
/// invariants.
#[test]
fn generator_families_partition_well() {
    for (name, g) in [
        ("torus", generators::grid_torus(24, 18)),
        (
            "random_regular",
            generators::random_regular(256, 8, 11).unwrap(),
        ),
        ("power_law", generators::power_law(400, 2.5, 32, 7)),
    ] {
        for k in [2usize, 4, 8] {
            let report = bfs_partition(&g, k).report(&g);
            assert!(
                report.balance_factor <= 1.0 + (k * g.max_degree()) as f64 / g.m() as f64 + 1e-9,
                "{name}/k={k}: balance {}",
                report.balance_factor
            );
            assert!(
                report.cut_fraction < 0.7,
                "{name}/k={k}: cut fraction {}",
                report.cut_fraction
            );
        }
    }
}
