//! The generalized token dropping game (Section 4 of the paper).
//!
//! The game is played on a directed graph. Every node starts with at most `k`
//! tokens, every arc is initially *active*, and a token may move over an
//! active arc `(u, v)` if `u` has a token and `v` has fewer than `k` tokens;
//! the arc then becomes passive. The game ends in a state where every node
//! has at most `k` tokens and every still-active arc `(u, v)` satisfies
//! `τ(u) ≤ τ(v) + σ(u, v)` for the tolerated slack `σ`.
//!
//! Two solvers are provided:
//!
//! * [`solve_sequential`] — the simple sequential reference: repeatedly move a
//!   token over an arc that still violates the slack condition. It is used to
//!   validate the distributed solver and in tests.
//! * [`solve_distributed`] — the distributed algorithm of Section 4.1 with
//!   parameters `δ` and per-node `α_v`. It runs `⌊k/δ⌋ − 1` phases of `O(1)`
//!   rounds each and guarantees the bound of Theorem 4.3 on every active arc.

use distgraph::NodeId;
use distsim::{map_node_chunks, ExecutionPolicy};
use serde::{Deserialize, Serialize};

/// Index of an arc of a [`TokenGame`].
pub type ArcId = usize;

/// A generalized token dropping game instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGame {
    /// Number of nodes (nodes are `0..n`, reusing the host graph's ids).
    pub n: usize,
    /// Directed arcs `(tail, head)`: a token can move from the tail to the head.
    pub arcs: Vec<(NodeId, NodeId)>,
    /// The per-node token capacity `k ≥ 1`.
    pub k: usize,
    /// Initial number of tokens per node (each at most `k`).
    pub initial_tokens: Vec<usize>,
}

/// Per-node parameters of the distributed solver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGameParams {
    /// Per-node slack-control values `α_v ≥ δ ≥ 1`.
    pub alpha: Vec<usize>,
    /// Phase granularity `δ ≥ 1`: each phase converts `δ` active tokens of
    /// every active node into passive tokens.
    pub delta: usize,
}

/// The outcome of playing the game.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGameResult {
    /// Final number of tokens per node.
    pub tokens: Vec<usize>,
    /// For each arc, whether a token was moved over it (it is then passive).
    pub moved: Vec<bool>,
    /// Number of phases executed (distributed solver) or moves performed
    /// (sequential solver).
    pub phases: u64,
    /// Number of synchronous communication rounds charged
    /// (3 per phase for the distributed solver, see Section 4.1).
    pub rounds: u64,
}

impl TokenGame {
    /// Creates a game instance, checking basic well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if an arc endpoint is out of range, a node starts with more than
    /// `k` tokens, or `k = 0` while some node has a token.
    pub fn new(
        n: usize,
        arcs: Vec<(NodeId, NodeId)>,
        k: usize,
        initial_tokens: Vec<usize>,
    ) -> Self {
        assert_eq!(initial_tokens.len(), n, "one initial token count per node");
        for &(u, v) in &arcs {
            assert!(u.index() < n && v.index() < n, "arc endpoint out of range");
            assert_ne!(u, v, "self-loop arcs are not allowed");
        }
        for (v, &t) in initial_tokens.iter().enumerate() {
            assert!(
                t <= k,
                "node {v} starts with {t} tokens, above the capacity k = {k}"
            );
        }
        TokenGame {
            n,
            arcs,
            k,
            initial_tokens,
        }
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The total number of tokens in the instance (invariant under play).
    pub fn total_tokens(&self) -> usize {
        self.initial_tokens.iter().sum()
    }

    /// The degree of a node in the *undirected version* of the game graph
    /// (the paper's `deg_G(v)` in Section 4.1).
    pub fn degree(&self, v: NodeId) -> usize {
        self.arcs.iter().filter(|(a, b)| *a == v || *b == v).count()
    }
}

/// The slack bound of Theorem 4.3 for an arc `(u, v)`:
///
/// `τ(u) − τ(v) ≤ 2(α_u + α_v) + (deg(u)·deg(v)/(α_u·α_v) + deg(u)/α_u + deg(v)/α_v) · δ`.
pub fn theorem_4_3_bound(game: &TokenGame, params: &TokenGameParams, u: NodeId, v: NodeId) -> f64 {
    let du = game.degree(u) as f64;
    let dv = game.degree(v) as f64;
    let au = params.alpha[u.index()] as f64;
    let av = params.alpha[v.index()] as f64;
    let delta = params.delta as f64;
    2.0 * (au + av) + (du * dv / (au * av) + du / au + dv / av) * delta
}

/// Plays the game sequentially: repeatedly picks an active arc `(u, v)` with
/// `τ(u) ≥ 1`, `τ(v) < k` and `τ(u) > τ(v) + σ(u, v)` and moves one token.
///
/// Terminates after at most `|arcs|` moves with a state in which every active
/// arc satisfies the slack condition `τ(u) ≤ τ(v) + σ(u, v)`.
pub fn solve_sequential(
    game: &TokenGame,
    sigma: impl Fn(NodeId, NodeId) -> f64,
) -> TokenGameResult {
    let mut tokens = game.initial_tokens.clone();
    let mut moved = vec![false; game.num_arcs()];
    let mut total_moves = 0u64;
    loop {
        let mut progressed = false;
        for (i, &(u, v)) in game.arcs.iter().enumerate() {
            if moved[i] {
                continue;
            }
            let tu = tokens[u.index()];
            let tv = tokens[v.index()];
            if tu >= 1 && tv < game.k && (tu as f64) > tv as f64 + sigma(u, v) {
                tokens[u.index()] -= 1;
                tokens[v.index()] += 1;
                moved[i] = true;
                total_moves += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    TokenGameResult {
        tokens,
        moved,
        phases: total_moves,
        rounds: 0,
    }
}

/// Runs the distributed algorithm of Section 4.1 sequentially.
///
/// Each of the `⌊k/δ⌋ − 1` phases costs three communication rounds (state
/// announcement, proposals, token transfers); the returned
/// [`TokenGameResult::rounds`] accounts them so callers can charge the
/// enclosing [`distsim::Network`].
///
/// # Panics
///
/// Panics if `params.alpha` has the wrong length or `δ = 0`.
pub fn solve_distributed(game: &TokenGame, params: &TokenGameParams) -> TokenGameResult {
    solve_distributed_with(game, params, ExecutionPolicy::Sequential)
}

/// Runs the distributed algorithm of Section 4.1 under the given
/// [`ExecutionPolicy`].
///
/// The per-node work of every phase (activity test, proposal selection,
/// proposal acceptance) is evaluated over contiguous node chunks and the
/// per-chunk results are applied in node order, so the outcome is
/// bit-identical to [`solve_distributed`] at every thread count.
///
/// # Panics
///
/// Same contract as [`solve_distributed`].
pub fn solve_distributed_with(
    game: &TokenGame,
    params: &TokenGameParams,
    policy: ExecutionPolicy,
) -> TokenGameResult {
    assert_eq!(params.alpha.len(), game.n, "one alpha per node");
    assert!(params.delta >= 1, "delta must be at least 1");
    let delta = params.delta;
    let k = game.k;
    let n = game.n;

    // Active (x) and passive (y) token counts, Section 4.1 notation.
    let mut x: Vec<usize> = game.initial_tokens.clone();
    let mut y: Vec<usize> = vec![0; n];
    let mut arc_active: Vec<bool> = vec![true; game.num_arcs()];
    let mut moved: Vec<bool> = vec![false; game.num_arcs()];

    // Pre-compute adjacency of the game digraph in a single pass over the arcs.
    let mut in_arcs: Vec<Vec<(ArcId, NodeId)>> = vec![Vec::new(); n];
    let mut degree: Vec<usize> = vec![0; n];
    for (i, &(tail, head)) in game.arcs.iter().enumerate() {
        in_arcs[head.index()].push((i, tail));
        degree[tail.index()] += 1;
        degree[head.index()] += 1;
    }

    let total_phases = (k / delta).saturating_sub(1) as u64;
    let mut phases_run = 0u64;

    for t in 1..=total_phases {
        // Step 1: active nodes A(t) (per-node test, chunked).
        let active: Vec<bool> = {
            let x = &x;
            map_node_chunks(n, policy, |range| {
                range
                    .map(|v| x[v] >= params.alpha[v] + delta)
                    .collect::<Vec<bool>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // Once no node is active the play has reached a fixpoint: conversions
        // happen only at active nodes and proposals go only to active
        // in-neighbors, so every remaining phase would leave the state
        // untouched. Halting here produces the exact same outcome without
        // charging rounds for provably inert phases.
        if !active.iter().any(|&a| a) {
            break;
        }
        phases_run += 1;
        // Step 2: move δ tokens from active to passive at active nodes.
        let mut x_prime = x.clone();
        for v in 0..n {
            if active[v] {
                x_prime[v] -= delta;
                y[v] += delta;
            }
        }
        // Step 3 + 4: every node v with spare capacity sends proposals to the
        // active in-neighbors over still-active arcs, preferring in-neighbors
        // with the smallest deg(w)/α_w ratio. The per-node selection (filter
        // + sort) runs chunked; the chunk results are concatenated in node
        // order, so the proposal lists match the sequential schedule exactly.
        let t_delta = t as usize * delta;
        let chosen: Vec<Vec<(ArcId, NodeId)>> = {
            let (x_prime, active, arc_active) = (&x_prime, &active, &arc_active);
            let (in_arcs, degree) = (&in_arcs, &degree);
            map_node_chunks(n, policy, |range| {
                let mut out: Vec<Vec<(ArcId, NodeId)>> = Vec::with_capacity(range.len());
                for v in range {
                    let capacity_bound = k as i64 - t_delta as i64 - params.alpha[v] as i64;
                    if (x_prime[v] as i64) > capacity_bound {
                        out.push(Vec::new());
                        continue;
                    }
                    let mut senders: Vec<(ArcId, NodeId)> = in_arcs[v]
                        .iter()
                        .copied()
                        .filter(|(arc, w)| arc_active[*arc] && active[w.index()])
                        .collect();
                    // Priority: smaller deg(w)/α_w first; tie-break on node id
                    // for determinism.
                    senders.sort_by(|(_, a), (_, b)| {
                        let ra = degree[a.index()] as f64 / params.alpha[a.index()] as f64;
                        let rb = degree[b.index()] as f64 / params.alpha[b.index()] as f64;
                        ra.partial_cmp(&rb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(b))
                    });
                    let budget = (k as i64 - t_delta as i64 - x_prime[v] as i64).max(0) as usize;
                    senders.truncate(budget);
                    out.push(senders);
                }
                out
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // proposals[w] = list of arc ids over which w received a proposal
        // this phase, scattered in proposer order.
        let mut proposals: Vec<Vec<ArcId>> = vec![Vec::new(); n];
        for picks in &chosen {
            for &(arc, w) in picks {
                proposals[w.index()].push(arc);
            }
        }
        // Step 5: each proposed-to node w accepts q_w = min(p_w, x'_w)
        // proposals (smallest arc ids first, chunked per node) and sends a
        // token over those arcs; the acceptances are applied in node order.
        let accepted_by: Vec<Vec<ArcId>> = {
            let (proposals, x_prime) = (&proposals, &x_prime);
            map_node_chunks(n, policy, |range| {
                let mut out: Vec<Vec<ArcId>> = Vec::with_capacity(range.len());
                for w in range {
                    if proposals[w].is_empty() {
                        out.push(Vec::new());
                        continue;
                    }
                    let q = proposals[w].len().min(x_prime[w]);
                    // Deterministic choice: accept the proposals with the
                    // smallest arc ids.
                    let mut accepted = proposals[w].clone();
                    accepted.sort_unstable();
                    accepted.truncate(q);
                    out.push(accepted);
                }
                out
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let mut received: Vec<usize> = vec![0; n];
        let mut sent: Vec<usize> = vec![0; n];
        for (w, accepted) in accepted_by.iter().enumerate() {
            for &arc in accepted {
                let (tail, head) = game.arcs[arc];
                debug_assert_eq!(tail.index(), w);
                arc_active[arc] = false;
                moved[arc] = true;
                received[head.index()] += 1;
                sent[w] += 1;
            }
        }
        // Step 6: update active token counts.
        for v in 0..n {
            x[v] = x_prime[v] + received[v] - sent[v];
        }
    }

    let tokens: Vec<usize> = (0..n).map(|v| x[v] + y[v]).collect();
    TokenGameResult {
        tokens,
        moved,
        phases: phases_run,
        rounds: 3 * phases_run,
    }
}

/// Checks the fundamental invariants of a play of the game:
/// token conservation, per-node capacity, and at most one move per arc.
pub fn check_invariants(game: &TokenGame, result: &TokenGameResult) -> bool {
    let conserved = result.tokens.iter().sum::<usize>() == game.total_tokens();
    let capacity = result.tokens.iter().all(|&t| t <= game.k);
    let arcs_ok = result.moved.len() == game.num_arcs();
    conserved && capacity && arcs_ok
}

/// Checks that every arc over which no token moved satisfies the bound of
/// Theorem 4.3; returns the list of violating arcs (empty = all good).
pub fn check_theorem_4_3(
    game: &TokenGame,
    params: &TokenGameParams,
    result: &TokenGameResult,
) -> Vec<ArcId> {
    let mut violations = Vec::new();
    for (i, &(u, v)) in game.arcs.iter().enumerate() {
        if result.moved[i] {
            continue;
        }
        let tu = result.tokens[u.index()] as f64;
        let tv = result.tokens[v.index()] as f64;
        if tu - tv > theorem_4_3_bound(game, params, u, v) + 1e-9 {
            violations.push(i);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A layered "waterfall" instance: tokens at the top layer, arcs pointing
    /// downwards, exactly the original token dropping setting of [14].
    fn layered_game(layers: usize, width: usize, k: usize) -> TokenGame {
        let n = layers * width;
        let mut arcs = Vec::new();
        for l in 0..layers - 1 {
            for a in 0..width {
                for b in 0..width {
                    arcs.push((node(l * width + a), node((l + 1) * width + b)));
                }
            }
        }
        let mut tokens = vec![0usize; n];
        tokens[..width].fill(k);
        TokenGame::new(n, arcs, k, tokens)
    }

    fn uniform_params(game: &TokenGame, alpha: usize, delta: usize) -> TokenGameParams {
        TokenGameParams {
            alpha: vec![alpha; game.n],
            delta,
        }
    }

    #[test]
    fn game_construction_validates() {
        let game = TokenGame::new(3, vec![(node(0), node(1))], 2, vec![2, 0, 1]);
        assert_eq!(game.num_arcs(), 1);
        assert_eq!(game.total_tokens(), 3);
        assert_eq!(game.degree(node(0)), 1);
        assert_eq!(game.degree(node(2)), 0);
    }

    #[test]
    #[should_panic(expected = "above the capacity")]
    fn too_many_initial_tokens_panics() {
        TokenGame::new(2, vec![], 1, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_arc_panics() {
        TokenGame::new(2, vec![(node(1), node(1))], 1, vec![0, 0]);
    }

    #[test]
    fn sequential_solver_reaches_stability() {
        let game = layered_game(4, 3, 2);
        let result = solve_sequential(&game, |_, _| 0.0);
        assert!(check_invariants(&game, &result));
        // stability: every active arc (u,v) has τ(u) ≤ τ(v) or τ(v) = k or τ(u) = 0
        for (i, &(u, v)) in game.arcs.iter().enumerate() {
            if !result.moved[i] {
                let tu = result.tokens[u.index()];
                let tv = result.tokens[v.index()];
                assert!(tu == 0 || tv == game.k || tu <= tv);
            }
        }
    }

    #[test]
    fn sequential_solver_respects_slack() {
        let game = layered_game(3, 4, 8);
        let sigma = 3.0;
        let result = solve_sequential(&game, |_, _| sigma);
        assert!(check_invariants(&game, &result));
        for (i, &(u, v)) in game.arcs.iter().enumerate() {
            if !result.moved[i] {
                let tu = result.tokens[u.index()] as f64;
                let tv = result.tokens[v.index()] as f64;
                assert!(tu == 0.0 || tv == game.k as f64 || tu <= tv + sigma);
            }
        }
    }

    #[test]
    fn distributed_solver_phase_count_matches_k_over_delta() {
        let game = layered_game(4, 4, 32);
        let params = uniform_params(&game, 2, 2);
        let result = solve_distributed(&game, &params);
        // The schedule is k/δ − 1 phases; the solver may halt earlier once no
        // node is active (the play is then at a fixpoint and every remaining
        // phase would be a no-op), so the scheduled count is an upper bound.
        assert!(result.phases <= (32 / 2 - 1) as u64);
        assert!(result.phases > 0);
        assert_eq!(result.rounds, 3 * result.phases);
        assert!(check_invariants(&game, &result));
    }

    #[test]
    fn distributed_solver_satisfies_theorem_4_3_on_layered_games() {
        for (layers, width, k, delta) in [(3, 3, 8, 1), (4, 5, 16, 2), (5, 4, 64, 4)] {
            let game = layered_game(layers, width, k);
            let params = uniform_params(&game, delta.max(1), delta);
            let result = solve_distributed(&game, &params);
            assert!(check_invariants(&game, &result), "invariants violated");
            let violations = check_theorem_4_3(&game, &params, &result);
            assert!(
                violations.is_empty(),
                "Theorem 4.3 violated on {} arcs for layers={layers} width={width}",
                violations.len()
            );
        }
    }

    #[test]
    fn distributed_solver_on_random_digraphs_with_cycles() {
        // The generalization of the paper explicitly allows general directed
        // graphs (with cycles); check Theorem 4.3 holds there as well.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..10 {
            let n = 30;
            let k = 16;
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.08) {
                        arcs.push((node(u), node(v)));
                    }
                }
            }
            let tokens: Vec<usize> = (0..n).map(|_| rng.gen_range(0..=k)).collect();
            let game = TokenGame::new(n, arcs, k, tokens);
            let delta = 1 + trial % 3;
            let params = uniform_params(&game, delta + 1, delta);
            let result = solve_distributed(&game, &params);
            assert!(
                check_invariants(&game, &result),
                "invariants violated in trial {trial}"
            );
            let violations = check_theorem_4_3(&game, &params, &result);
            assert!(
                violations.is_empty(),
                "Theorem 4.3 violated in trial {trial}"
            );
        }
    }

    #[test]
    fn tokens_flow_downhill_in_simple_chain() {
        // 0 -> 1 -> 2, k = 1, one token at node 0: it should be able to reach
        // an empty node; after the game no active arc may have a large
        // imbalance.
        let game = TokenGame::new(
            3,
            vec![(node(0), node(1)), (node(1), node(2))],
            1,
            vec![1, 0, 0],
        );
        let params = uniform_params(&game, 1, 1);
        // k/δ − 1 = 0 phases: the distributed solver is allowed to do nothing
        // because with k = 1 and δ = 1 the bound of Theorem 4.3 is ≥ k anyway.
        let result = solve_distributed(&game, &params);
        assert!(check_invariants(&game, &result));
        assert!(check_theorem_4_3(&game, &params, &result).is_empty());
        // The sequential solver with zero slack does move the token.
        let seq = solve_sequential(&game, |_, _| 0.0);
        assert_eq!(seq.tokens, vec![0, 0, 1]);
        assert_eq!(seq.phases, 2);
    }

    #[test]
    fn parallel_solver_is_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for trial in 0..6 {
            let n = 40;
            let k = 24;
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.06) {
                        arcs.push((node(u), node(v)));
                    }
                }
            }
            let tokens: Vec<usize> = (0..n).map(|_| rng.gen_range(0..=k)).collect();
            let game = TokenGame::new(n, arcs, k, tokens);
            let delta = 1 + trial % 4;
            let params = uniform_params(&game, delta + 1, delta);
            let reference = solve_distributed(&game, &params);
            for threads in [2usize, 3, 8] {
                let result =
                    solve_distributed_with(&game, &params, ExecutionPolicy::parallel(threads));
                assert_eq!(
                    result, reference,
                    "trial {trial}: {threads}-thread run diverged"
                );
            }
        }
    }

    #[test]
    fn no_arcs_means_nothing_happens() {
        let game = TokenGame::new(4, vec![], 3, vec![3, 1, 0, 2]);
        let params = uniform_params(&game, 1, 1);
        let result = solve_distributed(&game, &params);
        assert_eq!(result.tokens, vec![3, 1, 0, 2]);
        assert!(result.moved.is_empty());
        assert!(check_invariants(&game, &result));
    }

    #[test]
    fn capacity_is_never_exceeded_during_play() {
        // Many arcs into a single sink with tiny capacity.
        let width = 10;
        let mut arcs = Vec::new();
        for i in 0..width {
            arcs.push((node(i), node(width)));
        }
        let k = 4;
        let mut tokens = vec![k; width];
        tokens.push(0);
        let game = TokenGame::new(width + 1, arcs, k, tokens);
        let params = uniform_params(&game, 1, 1);
        let result = solve_distributed(&game, &params);
        assert!(check_invariants(&game, &result));
        assert!(result.tokens[width] <= k);
    }
}
