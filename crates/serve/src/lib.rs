//! Edge-coloring as a service: a long-lived daemon over live snapshots.
//!
//! This crate is the front door of the reproduction's serving story. It
//! owns a loaded snapshot ([`diststore`]) materialized into a
//! [`distgraph::DynamicGraph`], maintains a live
//! [`edgecolor::Recoloring`] session wrapped in
//! [`edgecolor::SelfStabilizing`], and speaks a hand-rolled,
//! length-prefixed TCP protocol over `std::net` — no async runtime, no
//! network dependencies, offline-friendly.
//!
//! The pipeline is **request → admit → coalesce → repair → respond**:
//!
//! * **Lookups** (color by stable [`distgraph::EdgeId`]) are answered off an
//!   epoch-pinned immutable state — readers never block writers and never
//!   observe torn state ([`state`] module docs).
//! * **Submissions** pass bounded-queue admission control with typed
//!   rejects ([`wire::RejectCode`]); each tick coalesces every admitted
//!   batch into *one* [`distgraph::UpdateBatch`] and one local repair —
//!   the paper's Theorem 1.1 machinery recoloring only the dirty subgraph,
//!   which is what makes low-latency online serving plausible at all.
//! * **Multi-graph serving** (protocol v2): one daemon hosts a registry of
//!   independent tenants, each with its own admission queue, tick loop,
//!   epoch chain and swap contract, routed by the `graph_id` field in the
//!   v2 frame header. Connections that skip the [`wire::Request::Hello`]
//!   handshake get v1 semantics against graph 0.
//! * **Pipelined connections**: a v2 connection decouples reads from
//!   writes (reader → per-graph executors → bounded response queue →
//!   writer), so a slow repair on one graph never stalls lookups on
//!   another; responses carry the originating `request_id` and may
//!   complete out of order across graphs.
//! * **Hot swap** replaces a served snapshot under an epoch bump;
//!   in-flight reads finish on the old epoch, and a corrupt snapshot is
//!   rejected with the old one still serving.
//! * **Introspection** (metrics with full latency [`hist`]ograms, palette,
//!   shard cut) and a deterministic [`loadgen`] close the loop for the
//!   bench layer's `SERVE` experiment.
//!
//! See `docs/SERVE.md` for the frame format, handshake, admission
//! semantics and the hot-swap epoch contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod error;
pub mod hist;
pub mod loadgen;
pub mod state;
pub mod wire;

pub use client::{Admitted, Client, ClientBuilder, PipelinedClient, Rejection, Ticket};
pub use daemon::DaemonHandle;
pub use error::{ClientError, ProtocolError, SetupError, WireError};
pub use hist::{LatencyHistogram, HIST_BUCKETS};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use state::{EpochState, ServeConfig, ServerCore, Tenant};
pub use wire::{
    GraphInfo, LookupOutcome, MetricsReport, RejectCode, Request, Response, MAX_FRAME_LEN,
    MAX_SWAP_PATH, PROTOCOL_VERSION,
};
