//! # edgecolor-bench
//!
//! The experiment harness regenerating the evaluation suite E1–E11 described
//! in `DESIGN.md`. Each `run_eN` function returns one or more [`Table`]s; the
//! `experiments` binary prints them and `EXPERIMENTS.md` records a reference
//! run. The Criterion benches under `benches/` measure the wall-clock cost of
//! the simulation itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use distgraph::{
    generators::{self, UpdateScenario, UpdateStream},
    DynamicGraph, EdgeId, Graph, ListAssignment, NodeId,
};
use distsim::{
    run_program_under_faults, run_program_with, ExecutionPolicy, FaultPlan, IdAssignment, Incoming,
    Model, Network, NodeCtx, NodeProgram, Step,
};
use edgecolor::balanced_orientation::compute_balanced_orientation;
use edgecolor::defective_edge::{
    defective_two_edge_coloring, measure_defect_ratio, uniform_lambda,
};
use edgecolor::token_dropping::{
    check_theorem_4_3, solve_distributed, theorem_4_3_bound, TokenGame, TokenGameParams,
};
use edgecolor::{
    color_congest, color_edges_local, ColoringParams, OrientationParams, ParamProfile, Recoloring,
    SelfStabilizing,
};
use edgecolor_baselines as baselines;
use edgecolor_verify::{check_complete, check_delta, check_proper_edge_coloring};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub mod json;
pub mod regression;

/// Allocation-event counter behind the SCALE `allocs/round` column.
///
/// This library forbids `unsafe`, so it cannot install a counting
/// `#[global_allocator]` itself. The `experiments` binary wraps the system
/// allocator and bumps this counter on every allocation event (alloc +
/// realloc; frees are not counted); [`run_scale`] reads deltas around its
/// measurement reps. In a process that installs no counting allocator (unit
/// tests, external embedders) the counter stays at zero and the column
/// honestly reports 0 instead of a fabricated number.
pub static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Allocation events counted so far (see [`ALLOC_EVENTS`]).
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// A printable result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (e.g. "E1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

fn ids_for(graph: &Graph, seed: u64) -> IdAssignment {
    IdAssignment::scattered(graph.n(), seed)
}

fn regular_graph(delta: usize, seed: u64) -> Graph {
    let n = (4 * delta).max(96);
    let n = if n % 2 == 1 { n + 1 } else { n };
    generators::random_regular(n, delta, seed).expect("feasible regular graph")
}

/// E1 — rounds versus Δ for (2Δ−1)-edge coloring in the LOCAL model,
/// compared with the baselines.
pub fn run_e1(deltas: &[usize]) -> Table {
    let mut table = Table::new(
        "E1",
        "LOCAL rounds vs Δ: this paper vs baselines (random Δ-regular graphs)",
        &[
            "Δ",
            "n",
            "ours rounds",
            "ours colors",
            "greedy-classes rounds",
            "kw rounds",
            "randomized rounds",
            "ours log*-part",
            "rounds ×/doubling",
            "polylog fit c",
            "dominant stage",
            "fallback levels",
        ],
    );
    let params = ColoringParams::new(0.5);
    let mut first: Option<(usize, u64)> = None;
    let mut prev_rounds: Option<u64> = None;
    for &delta in deltas {
        let graph = regular_graph(delta, 7);
        let ids = ids_for(&graph, 3);
        let ours = color_edges_local(&graph, &ids, &params).expect("valid instance");
        check_proper_edge_coloring(&graph, &ours.coloring).assert_ok();
        check_complete(&graph, &ours.coloring).assert_ok();
        let classes = baselines::greedy_by_classes(&graph, &ids, Model::Local);
        let kw = baselines::kw_reduction(&graph, &ids, Model::Local);
        let random = baselines::randomized_coloring(&graph, 5, Model::Local);
        let rounds = ours.metrics.rounds;
        // Scaling-fit columns (the polylog(Δ) regression contract): the
        // rounds ratio against the previous Δ in the sweep, and the exponent
        // c solving rounds/rounds₀ = (log Δ / log Δ₀)^c anchored at the
        // sweep's first row. Polylog scaling means a bounded ratio per
        // doubling and a small, stable c; the Δ ≥ 16 blowup this column was
        // added for showed ratios of 160× and a c that grew with Δ.
        let ratio = prev_rounds
            .map(|p| format!("{:.2}", rounds as f64 / p.max(1) as f64))
            .unwrap_or_else(|| "-".into());
        let fit = first
            .map(|(d0, r0)| {
                let log_ratio = (delta.max(2) as f64).log2().ln() - (d0.max(2) as f64).log2().ln();
                if log_ratio.abs() < 1e-12 {
                    "-".to_string()
                } else {
                    format!("{:.2}", (rounds as f64 / r0.max(1) as f64).ln() / log_ratio)
                }
            })
            .unwrap_or_else(|| "-".into());
        first = first.or(Some((delta, rounds)));
        prev_rounds = Some(rounds);
        let fallbacks = ours.ledger.entries().iter().filter(|e| e.fallback).count();
        table.push_row(vec![
            delta.to_string(),
            graph.n().to_string(),
            rounds.to_string(),
            ours.coloring.palette_size().to_string(),
            classes.metrics.rounds.to_string(),
            kw.metrics.rounds.to_string(),
            random.metrics.rounds.to_string(),
            ours.initial_coloring_rounds.to_string(),
            ratio,
            fit,
            ours.ledger.dominant_stage().to_string(),
            fallbacks.to_string(),
        ]);
    }
    table
}

/// E2 — rounds versus n at fixed Δ (the locality / log* n claim).
pub fn run_e2(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E2",
        "LOCAL rounds vs n at fixed Δ = 8 (only the O(log* n) part may grow)",
        &[
            "n",
            "total rounds",
            "initial O(Δ²)-coloring rounds",
            "colors",
        ],
    );
    let params = ColoringParams::new(0.5);
    for &n in ns {
        let n = if n % 2 == 1 { n + 1 } else { n };
        let graph = generators::random_regular(n, 8, 11).expect("feasible");
        let ids = ids_for(&graph, 1);
        let ours = color_edges_local(&graph, &ids, &params).expect("valid instance");
        table.push_row(vec![
            n.to_string(),
            ours.metrics.rounds.to_string(),
            ours.initial_coloring_rounds.to_string(),
            ours.coloring.palette_size().to_string(),
        ]);
    }
    table
}

/// E3 — CONGEST colors used versus Δ and ε (Theorem 1.2's (8+ε)Δ bound).
pub fn run_e3(deltas: &[usize], epsilons: &[f64]) -> Table {
    let mut table = Table::new(
        "E3",
        "CONGEST (8+ε)Δ coloring: colors used vs Δ and ε",
        &[
            "Δ",
            "ε",
            "colors",
            "colors/Δ",
            "rounds",
            "levels",
            "violations",
            "rounds ×/doubling",
            "dominant stage",
        ],
    );
    // Previous-Δ rounds per ε (the scaling-fit ratio is taken at fixed ε).
    let mut prev_rounds: Vec<Option<u64>> = vec![None; epsilons.len()];
    for &delta in deltas {
        for (ei, &eps) in epsilons.iter().enumerate() {
            let graph = regular_graph(delta, 13);
            let ids = ids_for(&graph, 5);
            let params = ColoringParams::new(eps);
            let result = color_congest(&graph, &ids, &params);
            check_proper_edge_coloring(&graph, &result.coloring).assert_ok();
            check_complete(&graph, &result.coloring).assert_ok();
            let rounds = result.metrics.rounds;
            let ratio = prev_rounds[ei]
                .map(|p| format!("{:.2}", rounds as f64 / p.max(1) as f64))
                .unwrap_or_else(|| "-".into());
            prev_rounds[ei] = Some(rounds);
            table.push_row(vec![
                delta.to_string(),
                format!("{eps:.2}"),
                result.colors_used.to_string(),
                format!("{:.2}", result.colors_used as f64 / delta as f64),
                rounds.to_string(),
                result.levels.to_string(),
                result.metrics.congest_violations.to_string(),
                ratio,
                result.ledger.dominant_stage().to_string(),
            ]);
        }
    }
    table
}

/// Builds the layered token dropping instance used by E4/E8.
pub fn layered_token_game(layers: usize, width: usize, k: usize) -> TokenGame {
    let n = layers * width;
    let mut arcs = Vec::new();
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                arcs.push((NodeId::new(l * width + a), NodeId::new((l + 1) * width + b)));
            }
        }
    }
    let mut tokens = vec![0usize; n];
    for t in tokens.iter_mut().take(width) {
        *t = k;
    }
    TokenGame::new(n, arcs, k, tokens)
}

/// E4 / E8 — token dropping: phases, rounds and slack versus k and δ
/// (Theorem 4.3 and the δ trade-off of Section 4.1).
pub fn run_e4(ks: &[usize], deltas: &[usize]) -> Table {
    let mut table = Table::new(
        "E4/E8",
        "Generalized token dropping: k/δ trade-off (layered game, 6 layers × 8 nodes)",
        &[
            "k",
            "δ",
            "phases",
            "rounds",
            "max slack measured",
            "max slack bound",
            "violations",
        ],
    );
    for &k in ks {
        for &delta in deltas {
            if delta > k {
                continue;
            }
            let game = layered_token_game(6, 8, k);
            let params = TokenGameParams {
                alpha: vec![delta; game.n],
                delta,
            };
            let result = solve_distributed(&game, &params);
            let violations = check_theorem_4_3(&game, &params, &result);
            let mut max_measured = 0i64;
            let mut max_bound = 0f64;
            for (i, &(u, v)) in game.arcs.iter().enumerate() {
                if result.moved[i] {
                    continue;
                }
                max_measured = max_measured
                    .max(result.tokens[u.index()] as i64 - result.tokens[v.index()] as i64);
                max_bound = max_bound.max(theorem_4_3_bound(&game, &params, u, v));
            }
            table.push_row(vec![
                k.to_string(),
                delta.to_string(),
                result.phases.to_string(),
                result.rounds.to_string(),
                max_measured.to_string(),
                format!("{max_bound:.0}"),
                violations.len().to_string(),
            ]);
        }
    }
    table
}

/// E5 — generalized defective 2-edge coloring quality versus ε
/// (Corollary 5.7): the measured defect divided by the allowed bound.
pub fn run_e5(deltas: &[usize], epsilons: &[f64]) -> Table {
    let mut table = Table::new(
        "E5",
        "Defective 2-edge coloring (λ = 1/2): defect ratio and rounds vs Δ and ε",
        &[
            "Δ",
            "ε",
            "max defect ratio",
            "rounds",
            "phases",
            "red share",
        ],
    );
    for &delta in deltas {
        for &eps in epsilons {
            let bg = generators::regular_bipartite(2 * delta, delta, 3).expect("feasible");
            let lambda = uniform_lambda(bg.graph().m());
            let params = OrientationParams::new(eps, ParamProfile::Practical);
            let mut net = Network::new(bg.graph(), Model::Local);
            let split = defective_two_edge_coloring(&bg, &lambda, &params, &mut net);
            let ratio = measure_defect_ratio(&bg, &split, &lambda);
            table.push_row(vec![
                delta.to_string(),
                format!("{eps:.2}"),
                format!("{ratio:.3}"),
                net.rounds().to_string(),
                split.phases.to_string(),
                format!("{:.2}", split.red_count() as f64 / bg.graph().m() as f64),
            ]);
        }
    }
    table
}

/// E6 — balanced orientation: measured additive slack versus the Theorem 5.6
/// bound (Definition 5.2 must hold, i.e. zero violations).
pub fn run_e6(deltas: &[usize]) -> Table {
    let mut table = Table::new(
        "E6",
        "Balanced edge orientation (η = 0): measured β vs guaranteed β",
        &["Δ", "ε", "measured β", "guaranteed β", "phases", "rounds"],
    );
    for &delta in deltas {
        let bg = generators::regular_bipartite(2 * delta, delta, 9).expect("feasible");
        let eps = 0.5;
        let params = OrientationParams::new(eps, ParamProfile::Practical);
        let eta = vec![0.0; bg.graph().m()];
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = compute_balanced_orientation(&bg, &eta, &params, &mut net);
        table.push_row(vec![
            delta.to_string(),
            format!("{:.2}", result.eps),
            format!("{:.1}", result.measured_beta),
            format!("{:.1}", result.beta),
            result.phases.to_string(),
            result.rounds.to_string(),
        ]);
    }
    table
}

/// E7 — CONGEST bandwidth audit: maximum message size versus the O(log n)
/// limit as n grows.
pub fn run_e7(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E7",
        "CONGEST bandwidth audit (Δ = 16): max message bits vs the model limit",
        &[
            "n",
            "bandwidth limit (bits)",
            "max message (bits)",
            "violations",
            "total messages",
        ],
    );
    for &n in ns {
        let n = if n % 2 == 1 { n + 1 } else { n };
        let graph = generators::random_regular(n, 16, 17).expect("feasible");
        let ids = ids_for(&graph, 23);
        let params = ColoringParams::new(0.5);
        let result = color_congest(&graph, &ids, &params);
        let limit = Model::congest_for(n).bandwidth_limit().unwrap_or(0);
        table.push_row(vec![
            n.to_string(),
            limit.to_string(),
            result.metrics.max_message_bits.to_string(),
            result.metrics.congest_violations.to_string(),
            result.metrics.messages.to_string(),
        ]);
    }
    table
}

/// E9 — summary across graph families (LOCAL and CONGEST).
pub fn run_e9() -> Table {
    let mut table = Table::new(
        "E9",
        "Graph-family summary (target Δ ≈ 16, n ≈ 256)",
        &[
            "family",
            "n",
            "m",
            "Δ",
            "LOCAL colors",
            "LOCAL rounds",
            "CONGEST colors",
            "CONGEST rounds",
            "valid",
        ],
    );
    let params = ColoringParams::new(0.5);
    for family in generators::Family::all() {
        let graph = family.generate(256, 16, 31);
        if graph.m() == 0 {
            continue;
        }
        let ids = ids_for(&graph, 3);
        let local = color_edges_local(&graph, &ids, &params).expect("valid instance");
        let congest = color_congest(&graph, &ids, &params);
        let valid = check_proper_edge_coloring(&graph, &local.coloring).is_ok()
            && check_complete(&graph, &local.coloring).is_ok()
            && check_proper_edge_coloring(&graph, &congest.coloring).is_ok()
            && check_complete(&graph, &congest.coloring).is_ok();
        table.push_row(vec![
            family.name().to_string(),
            graph.n().to_string(),
            graph.m().to_string(),
            graph.max_degree().to_string(),
            local.coloring.palette_size().to_string(),
            local.metrics.rounds.to_string(),
            congest.colors_used.to_string(),
            congest.metrics.rounds.to_string(),
            valid.to_string(),
        ]);
    }
    table
}

/// E10 — list edge coloring with skewed lists: solver activity and validity.
pub fn run_e10() -> Table {
    let mut table = Table::new(
        "E10",
        "(degree+1)-list edge coloring with skewed lists (Δ = 16 regular bipartite)",
        &[
            "list shape",
            "colors used",
            "rounds",
            "solver calls",
            "fallback rounds",
            "outer iters",
        ],
    );
    let bg = generators::regular_bipartite(48, 16, 7).expect("feasible");
    let graph = bg.graph().clone();
    let space = 4 * graph.max_edge_degree();
    let ids = ids_for(&graph, 9);
    let params = ColoringParams::new(0.5);

    let shapes: Vec<(&str, ListAssignment)> = vec![
        (
            "uniform (degree+1)",
            ListAssignment::degree_plus_one(&graph),
        ),
        (
            "skewed low/high halves",
            ListAssignment::new(
                space,
                graph
                    .edges()
                    .map(|e| {
                        let need = graph.edge_degree(e) + 1;
                        if e.index() % 2 == 0 {
                            (0..need).collect()
                        } else {
                            (space - need..space).collect()
                        }
                    })
                    .collect(),
            ),
        ),
        (
            "full 2Δ−1 palette",
            ListAssignment::full_palette(&graph, 2 * graph.max_degree() - 1),
        ),
    ];
    for (name, lists) in shapes {
        let outcome =
            edgecolor::list_edge_coloring(&graph, &lists, &ids, &params).expect("valid lists");
        check_proper_edge_coloring(&graph, &outcome.coloring).assert_ok();
        check_complete(&graph, &outcome.coloring).assert_ok();
        table.push_row(vec![
            name.to_string(),
            outcome.colors_used.to_string(),
            outcome.metrics.rounds.to_string(),
            outcome.solver_calls.to_string(),
            outcome.fallback_rounds.to_string(),
            outcome.outer_iterations.to_string(),
        ]);
    }
    table
}

/// One measured configuration of the `run_scale` experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleMeasurement {
    /// Graph description, e.g. `grid_torus(1000x500)`.
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Worker threads of the measured [`ExecutionPolicy`] (1 = sequential).
    pub threads: usize,
    /// Wall-clock time of the simulated execution, in milliseconds.
    pub wall_ms: f64,
    /// `sequential wall / this wall` (1.0 for the sequential row itself).
    pub speedup_vs_sequential: f64,
    /// Whether outputs and metrics were bit-identical to the sequential run.
    pub identical_to_sequential: bool,
    /// Rounds charged by the simulated execution.
    pub rounds: u64,
    /// Messages delivered by the simulated execution.
    pub messages: u64,
    /// Simulated rounds completed per wall-clock second (`rounds / wall`,
    /// from the best rep). The round engine's throughput headline;
    /// host-dependent, so the regression contract only floor-checks it.
    pub rounds_per_sec: f64,
    /// Message payload bytes delivered per round (`total_bits / 8 /
    /// rounds`). A pure function of the deterministic metrics — compared
    /// within float tolerance by the regression contract.
    pub bytes_per_round: f64,
    /// Allocation events per round: the counter delta of the cheapest rep
    /// (see [`ALLOC_EVENTS`]) divided by the round count. Includes the run's
    /// one-time setup *and* the flooding program's own per-node send
    /// vectors (which are O(n) by workload design), so this is not a
    /// measure of the engine's steady-state rate — the strict O(active
    /// chunks) pin lives in `crates/sim/tests/alloc_budget.rs`. The count
    /// is deterministic for a fixed binary and is diffed exactly, so any
    /// engine change that re-grows per-round allocations shows up as a
    /// drift. Zero when no counting allocator is installed.
    pub allocs_per_round: u64,
    /// The minimum speedup this configuration is *expected* to reach on the
    /// measuring host, per [`expected_speedup_floor`]; `None` when the host
    /// cannot parallelize that far (or the run is a down-scaled smoke run),
    /// in which case `speedup_vs_sequential` carries no expectation at all.
    pub speedup_floor: Option<f64>,
    /// `speedup_vs_sequential >= speedup_floor` (trivially `true` when no
    /// floor applies). Informational: determinism is the hard guarantee,
    /// wall-clock is host-dependent.
    pub meets_floor: bool,
}

/// The minimum SCALE speedup a `threads`-worker run is expected to reach on
/// a host with `host_parallelism` hardware threads, or `None` when no
/// expectation applies.
///
/// A single-CPU container (like the one that recorded `BENCH_1.json`, see
/// `host.available_parallelism`) time-slices every worker onto one core, so
/// sub-1.0 "speedups" there are scheduling noise, not regressions — the
/// bit-identity of the parallel engine is asserted unconditionally, the
/// wall-clock expectation only where the hardware can express it. 2-thread
/// runs just must not lose; once the host has ≥ 4 real cores backing ≥ 4
/// workers (`threads ≥ 4` here implies `host_parallelism ≥ 4` via the
/// oversubscription gate), the allocation-free delivery path is expected to
/// scale to a genuine ≥ 2× win.
pub fn expected_speedup_floor(threads: usize, host_parallelism: usize) -> Option<f64> {
    if threads <= 1 || host_parallelism < 2 || threads > host_parallelism {
        return None;
    }
    Some(if threads >= 4 { 2.0 } else { 1.05 })
}

/// The per-node program driven by the scale experiment: `rounds` rounds of
/// max-identifier flooding. Every round every node scans its inbox and
/// re-broadcasts the largest identifier seen, which makes each round's work
/// proportional to the node's degree — the same profile as the paper's
/// proposal/accept building blocks.
struct ScaleFlood {
    best: u64,
    rounds_left: u32,
}

impl NodeProgram for ScaleFlood {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        self.best = ctx.id;
        ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, u64> {
        for m in inbox {
            if m.msg > self.best {
                self.best = m.msg;
            }
        }
        if self.rounds_left == 0 {
            return Step::Halt(self.best);
        }
        self.rounds_left -= 1;
        Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
    }
}

/// The graph suite of the scale experiment. With `million = true` the first
/// two members have ≥ 10⁶ edges; with `million = false` the suite is scaled
/// down for CI smoke runs.
pub fn scale_graphs(million: bool) -> Vec<(String, Graph)> {
    if million {
        vec![
            ("grid_torus(1000x500)".to_string(), {
                generators::grid_torus(1000, 500)
            }),
            (
                "random_regular(262144,8)".to_string(),
                generators::random_regular(262_144, 8, 42).expect("feasible"),
            ),
            (
                "power_law(1000000,2.5,256)".to_string(),
                generators::power_law(1_000_000, 2.5, 256, 7),
            ),
        ]
    } else {
        vec![
            (
                "grid_torus(60x50)".to_string(),
                generators::grid_torus(60, 50),
            ),
            (
                "random_regular(4096,8)".to_string(),
                generators::random_regular(4096, 8, 42).expect("feasible"),
            ),
            (
                "power_law(20000,2.5,64)".to_string(),
                generators::power_law(20_000, 2.5, 64, 7),
            ),
        ]
    }
}

/// Scale — wall-clock of the parallel round-execution engine versus thread
/// count on large graphs (the `BENCH_*.json` speed baseline).
///
/// For every graph the same fixed flooding program runs once per requested
/// thread count (1 = `ExecutionPolicy::Sequential`); the harness asserts that
/// outputs and metrics are bit-identical across all thread counts and
/// records wall-clock milliseconds plus the speedup relative to the
/// sequential run.
pub fn run_scale(thread_counts: &[usize], million: bool) -> (Table, Vec<ScaleMeasurement>) {
    const FLOOD_ROUNDS: u32 = 6;
    let mut table = Table::new(
        "SCALE",
        "Parallel engine wall-clock vs threads (6 flooding rounds per graph)",
        &[
            "graph",
            "n",
            "m",
            "threads",
            "wall ms",
            "rounds/s",
            "KiB/round",
            "allocs/round",
            "speedup",
            "floor",
            "identical",
        ],
    );
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // The first configuration seeds the reference the `*_vs_sequential`
    // fields are computed against, so it must be the sequential baseline.
    assert!(
        thread_counts.first().is_some_and(|&t| t <= 1),
        "thread_counts must start with the sequential baseline (1)"
    );
    let mut measurements = Vec::new();
    // Best-of-N wall clock per configuration to damp scheduler noise on the
    // big runs.
    let reps = if million { 2 } else { 1 };
    for (name, graph) in scale_graphs(million) {
        let ids = IdAssignment::scattered(graph.n(), 1);
        let mut reference: Option<(Vec<Option<u64>>, distsim::Metrics, f64)> = None;
        for &threads in thread_counts {
            let policy = if threads <= 1 {
                ExecutionPolicy::Sequential
            } else {
                ExecutionPolicy::parallel(threads)
            };
            let mut wall_ms = f64::INFINITY;
            let mut alloc_delta = u64::MAX;
            let mut run = None;
            for _ in 0..reps {
                let allocs_before = alloc_events();
                let started = Instant::now();
                let this_run = run_program_with(
                    &graph,
                    &ids,
                    Model::Local,
                    policy,
                    u64::from(FLOOD_ROUNDS) + 2,
                    |_| ScaleFlood {
                        best: 0,
                        rounds_left: FLOOD_ROUNDS,
                    },
                );
                wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
                // The cheapest rep, like the best wall clock: later reps of
                // a deterministic run repeat the same allocation sequence,
                // minus any one-off lazy initialization of the first.
                alloc_delta = alloc_delta.min(alloc_events() - allocs_before);
                run = Some(this_run);
            }
            let run = run.expect("at least one repetition");
            let (identical, speedup) = match &reference {
                None => {
                    reference = Some((run.outputs.clone(), run.metrics, wall_ms));
                    (true, 1.0)
                }
                Some((ref_outputs, ref_metrics, ref_wall)) => (
                    *ref_outputs == run.outputs && *ref_metrics == run.metrics,
                    ref_wall / wall_ms,
                ),
            };
            // Determinism is asserted unconditionally — it holds on any
            // hardware. Wall-clock expectations are gated on the host (and
            // only for the full-size suite): see `expected_speedup_floor`.
            assert!(
                identical,
                "{name}: {threads}-thread run diverged from the sequential run"
            );
            let speedup_floor = if million {
                expected_speedup_floor(threads, host_parallelism)
            } else {
                None
            };
            let meets_floor = speedup_floor.is_none_or(|floor| speedup >= floor);
            let rounds_per_sec = run.metrics.rounds as f64 / (wall_ms / 1e3).max(1e-9);
            let bytes_per_round =
                run.metrics.total_bits as f64 / 8.0 / (run.metrics.rounds as f64).max(1.0);
            let allocs_per_round = alloc_delta / run.metrics.rounds.max(1);
            table.push_row(vec![
                name.clone(),
                graph.n().to_string(),
                graph.m().to_string(),
                threads.to_string(),
                format!("{wall_ms:.1}"),
                format!("{rounds_per_sec:.1}"),
                format!("{:.3}", bytes_per_round / 1024.0),
                allocs_per_round.to_string(),
                format!("{speedup:.2}"),
                speedup_floor.map_or("-".to_string(), |f| format!("{f:.2}")),
                identical.to_string(),
            ]);
            measurements.push(ScaleMeasurement {
                graph: name.clone(),
                n: graph.n(),
                m: graph.m(),
                threads,
                wall_ms,
                speedup_vs_sequential: speedup,
                identical_to_sequential: identical,
                rounds: run.metrics.rounds,
                messages: run.metrics.messages,
                rounds_per_sec,
                bytes_per_round,
                allocs_per_round,
                speedup_floor,
                meets_floor,
            });
        }
    }
    (table, measurements)
}

/// DYN — dynamic recoloring: per-batch local repair cost versus what a
/// recolor-from-scratch-per-batch policy would touch.
///
/// For each mutation scenario the harness colors the initial graph once
/// (`Recoloring::color_initial`), then plays `batches` update batches from a
/// seeded [`UpdateStream`], repairing after each one. Every repair is
/// re-validated incrementally (`check_delta` over the repair's touched set)
/// and the final coloring passes the full `O(m)` checkers. The `touched
/// frac` column is `repaired edges / (batches · m)` — the fraction of the
/// work a naive full-recolor-per-batch policy would have done; on the
/// million-edge churn stream it is ~10⁻⁵.
pub fn run_dyn(million: bool) -> Table {
    let mut table = Table::new(
        "DYN",
        "Dynamic recoloring: local repair vs full recolor per batch",
        &[
            "scenario",
            "n",
            "m",
            "batches",
            "repaired edges",
            "full recolors",
            "full-recolor edges",
            "touched frac",
            "repair wall ms",
            "initial color ms",
        ],
    );
    let params = ColoringParams::new(0.5);
    type Config = (&'static str, Graph, UpdateScenario, usize, u64);
    let configs: Vec<Config> = if million {
        let torus = generators::grid_torus(1000, 500); // exactly 10⁶ edges
        let window = torus.m();
        vec![
            (
                "churn",
                torus.clone(),
                UpdateScenario::Churn {
                    inserts: 64,
                    deletes: 64,
                },
                16,
                17,
            ),
            (
                "sliding-window",
                torus,
                UpdateScenario::SlidingWindow { window, rate: 96 },
                16,
                19,
            ),
            (
                "hub-attack",
                generators::grid_torus(40, 40),
                UpdateScenario::HubAttack {
                    hub: 0,
                    burst: 6,
                    deletes: 2,
                },
                12,
                23,
            ),
        ]
    } else {
        vec![
            (
                "churn",
                generators::grid_torus(40, 40),
                UpdateScenario::Churn {
                    inserts: 8,
                    deletes: 8,
                },
                12,
                17,
            ),
            (
                "sliding-window",
                generators::grid_torus(40, 40),
                UpdateScenario::SlidingWindow {
                    window: 3200,
                    rate: 12,
                },
                12,
                19,
            ),
            (
                "hub-attack",
                generators::grid_torus(12, 12),
                UpdateScenario::HubAttack {
                    hub: 0,
                    burst: 5,
                    deletes: 1,
                },
                8,
                23,
            ),
        ]
    };
    for (name, graph, scenario, batches, seed) in configs {
        let ids = IdAssignment::scattered(graph.n(), 3);
        let mut dg = DynamicGraph::from_graph(graph.clone());
        let started = Instant::now();
        // Steady-state scenarios provision palette headroom for Δ + 2 (the
        // capacity-planning knob); the hub attack deliberately runs with the
        // tight 2Δ−1 budget so the full-recolor fallback is exercised.
        let budget = match scenario {
            UpdateScenario::HubAttack { .. } => edgecolor::default_palette(graph.max_degree()),
            _ => edgecolor::default_palette(graph.max_degree() + 2),
        };
        let (mut rec, _) =
            Recoloring::with_budget(&dg, &ids, &params, budget).expect("valid initial instance");
        let initial_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut stream = UpdateStream::new(graph, scenario, seed);
        let mut repaired: u64 = 0;
        let mut full_recolors: u64 = 0;
        let mut full_equivalent: u64 = 0;
        let mut repair_ms = 0.0;
        for _ in 0..batches {
            let batch = stream.next_batch();
            let diff = dg.apply(&batch).expect("stream batches are valid");
            let started = Instant::now();
            let report = rec.repair(&dg, &diff, &ids, &params).expect("repairable");
            repair_ms += started.elapsed().as_secs_f64() * 1e3;
            repaired += report.repaired_edges as u64;
            full_equivalent += dg.m() as u64;
            if report.full_recolor {
                full_recolors += 1;
            }
            check_delta(dg.graph(), rec.coloring(), &report.touched, rec.palette()).assert_ok();
        }
        check_proper_edge_coloring(dg.graph(), rec.coloring()).assert_ok();
        check_complete(dg.graph(), rec.coloring()).assert_ok();
        let frac = repaired as f64 / (full_equivalent.max(1)) as f64;
        table.push_row(vec![
            name.to_string(),
            dg.n().to_string(),
            dg.m().to_string(),
            batches.to_string(),
            repaired.to_string(),
            full_recolors.to_string(),
            full_equivalent.to_string(),
            format!("{frac:.6}"),
            format!("{repair_ms:.1}"),
            format!("{initial_ms:.1}"),
        ]);
    }
    table
}

/// One measured configuration of the [`run_shard`] experiment (one row of
/// the `shard` array of the `edgecolor-bench/v1` JSON document; field
/// semantics in `docs/BENCH_SCHEMA.md`).
#[derive(Debug, Clone, Serialize)]
pub struct ShardMeasurement {
    /// `"flood"` (Network-level round execution) or `"churn-repair"` (a
    /// PR 3 dynamic recoloring stream replayed under a sharded policy).
    pub workload: String,
    /// Graph or scenario description.
    pub graph: String,
    /// Number of nodes of the (initial) graph.
    pub n: usize,
    /// Number of edges of the (initial) graph.
    pub m: usize,
    /// Number of shards of the measured `ExecutionPolicy::Sharded`.
    pub shards: usize,
    /// Fraction of edges crossing shard boundaries (partition quality).
    pub cut_fraction: f64,
    /// `max owned edges per shard / (m/k)` — 1.0 is perfect edge balance.
    pub balance_factor: f64,
    /// Wall-clock milliseconds spent building the BFS partition.
    pub partition_ms: f64,
    /// Wall-clock milliseconds of the sharded execution.
    pub wall_ms: f64,
    /// Wall-clock milliseconds of the sequential reference execution.
    pub seq_wall_ms: f64,
    /// Rounds charged by the measured execution.
    pub rounds: u64,
    /// Cross-shard messages per round (flood workloads; `None` for
    /// churn-repair rows, whose rounds run on inner dirty-subgraph networks
    /// that are not traffic-instrumented: the repair pipeline spawns a fresh
    /// child `Network` per dirty batch and its `RepairReport` carries no
    /// router statistics, so the harness reports the honest `None` instead
    /// of a fabricated zero — see the SHARD notes in `docs/BENCH_SCHEMA.md`).
    pub cross_messages_per_round: Option<f64>,
    /// Cross-shard payload bytes per round (same caveat as
    /// [`ShardMeasurement::cross_messages_per_round`]).
    pub cross_bytes_per_round: Option<f64>,
    /// Whether outputs/colorings and metrics were bit-identical to the
    /// sequential reference (asserted by the harness — a `false` here never
    /// survives a run).
    pub identical_to_sequential: bool,
    /// Total edges (re)colored by the repair pipeline (churn-repair rows).
    pub repaired_edges: Option<u64>,
    /// Peak resident set (`VmHWM`) of the whole benchmark process after this
    /// measurement, in bytes; `None` where procfs is unavailable. Monotone
    /// across the run — interpret as an upper bound, not a per-row cost.
    pub peak_rss_bytes: Option<u64>,
}

/// Peak resident set size (`VmHWM`) of the current process in bytes, read
/// from `/proc/self/status`; `None` on hosts without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// SHARD — the partitioned execution substrate on the million-edge
/// generator matrix plus the PR 3 churn streams.
///
/// Two workload kinds per configuration:
///
/// * **flood** — the SCALE flooding program runs once sequentially per graph
///   (the reference) and once per shard count under
///   `ExecutionPolicy::Sharded { shards, threads: 2 }`; the harness asserts
///   outputs and metrics are bit-identical and records the partition quality
///   (cut fraction, balance factor, build time) and the measured cross-shard
///   traffic (messages and payload bytes per round).
/// * **churn-repair** — a seeded churn stream is replayed twice through the
///   dynamic recoloring subsystem (sequential and `Sharded{4, 2}` policies);
///   the harness asserts the maintained colorings are bit-identical batch by
///   batch and records the repair volume.
///
/// With `million = false` the suite is down-scaled for CI smoke runs.
pub fn run_shard(million: bool) -> (Table, Vec<ShardMeasurement>) {
    const FLOOD_ROUNDS: u32 = 6;
    let mut table = Table::new(
        "SHARD",
        "Sharded substrate: partition quality, cross-shard traffic and bit-identity",
        &[
            "workload",
            "graph",
            "m",
            "shards",
            "cut frac",
            "balance",
            "partition ms",
            "wall ms",
            "seq ms",
            "cross msg/round",
            "cross KiB/round",
            "identical",
        ],
    );
    let mut measurements = Vec::new();
    let fmt_opt = |v: Option<f64>, scale: f64| -> String {
        v.map_or("-".to_string(), |x| format!("{:.1}", x / scale))
    };

    // Flood workload over the generator matrix.
    for (name, graph) in scale_graphs(million) {
        let ids = IdAssignment::scattered(graph.n(), 1);
        let make = |_| ScaleFlood {
            best: 0,
            rounds_left: FLOOD_ROUNDS,
        };
        let started = Instant::now();
        let reference = run_program_with(
            &graph,
            &ids,
            Model::Local,
            ExecutionPolicy::Sequential,
            u64::from(FLOOD_ROUNDS) + 2,
            make,
        );
        let seq_wall_ms = started.elapsed().as_secs_f64() * 1e3;
        for shards in [2usize, 4, 8] {
            let started = Instant::now();
            let partition = distshard::bfs_partition(&graph, shards);
            let partition_ms = started.elapsed().as_secs_f64() * 1e3;
            let report = partition.report(&graph);

            let started = Instant::now();
            let run = run_program_with(
                &graph,
                &ids,
                Model::Local,
                ExecutionPolicy::sharded(shards, 2),
                u64::from(FLOOD_ROUNDS) + 2,
                make,
            );
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let identical = run.outputs == reference.outputs && run.metrics == reference.metrics;
            assert!(
                identical,
                "{name}: sharded({shards}) flood diverged from the sequential run"
            );
            let stats = run.shard.as_ref().expect("sharded run has shard stats");
            // The run's own partition matches the stand-alone build.
            assert_eq!(stats.report, report, "{name}: partition not deterministic");
            let routed_rounds = stats.router.rounds.max(1) as f64;
            let cross_messages = stats.router.cross_messages as f64 / routed_rounds;
            let cross_bytes = stats.router.cross_bits as f64 / 8.0 / routed_rounds;
            table.push_row(vec![
                "flood".to_string(),
                name.clone(),
                graph.m().to_string(),
                shards.to_string(),
                format!("{:.4}", report.cut_fraction),
                format!("{:.3}", report.balance_factor),
                format!("{partition_ms:.1}"),
                format!("{wall_ms:.1}"),
                format!("{seq_wall_ms:.1}"),
                format!("{cross_messages:.0}"),
                format!("{:.1}", cross_bytes / 1024.0),
                identical.to_string(),
            ]);
            measurements.push(ShardMeasurement {
                workload: "flood".to_string(),
                graph: name.clone(),
                n: graph.n(),
                m: graph.m(),
                shards,
                cut_fraction: report.cut_fraction,
                balance_factor: report.balance_factor,
                partition_ms,
                wall_ms,
                seq_wall_ms,
                rounds: run.metrics.rounds,
                cross_messages_per_round: Some(cross_messages),
                cross_bytes_per_round: Some(cross_bytes),
                identical_to_sequential: identical,
                repaired_edges: None,
                peak_rss_bytes: peak_rss_bytes(),
            });
        }
    }

    // Churn-repair workload: the PR 3 update streams replayed under a
    // sharded policy must maintain a coloring bit-identical to the
    // sequential session.
    let (torus, inserts, deletes, batches) = if million {
        (generators::grid_torus(1000, 500), 64, 64, 8)
    } else {
        (generators::grid_torus(40, 40), 8, 8, 6)
    };
    let scenario = UpdateScenario::Churn { inserts, deletes };
    let shards = 4usize;
    let run_session = |policy: ExecutionPolicy| {
        let params = ColoringParams::new(0.5).with_policy(policy);
        let ids = IdAssignment::scattered(torus.n(), 3);
        let mut dg = DynamicGraph::from_graph(torus.clone());
        let budget = edgecolor::default_palette(torus.max_degree() + 2);
        let started = Instant::now();
        let (mut rec, _) =
            Recoloring::with_budget(&dg, &ids, &params, budget).expect("valid instance");
        let mut stream = UpdateStream::new(torus.clone(), scenario, 17);
        let mut repaired = 0u64;
        let mut rounds = 0u64;
        for _ in 0..batches {
            let diff = dg.apply(&stream.next_batch()).expect("valid batch");
            let report = rec.repair(&dg, &diff, &ids, &params).expect("repairable");
            repaired += report.repaired_edges as u64;
            rounds += report.metrics.rounds;
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        (rec, repaired, rounds, wall_ms)
    };
    let (seq_rec, seq_repaired, seq_rounds, seq_wall_ms) = run_session(ExecutionPolicy::Sequential);
    let started = Instant::now();
    let partition = distshard::bfs_partition(&torus, shards);
    let partition_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = partition.report(&torus);
    let (shard_rec, shard_repaired, shard_rounds, wall_ms) =
        run_session(ExecutionPolicy::sharded(shards, 2));
    let identical = shard_rec.coloring() == seq_rec.coloring() && shard_repaired == seq_repaired;
    assert!(
        identical,
        "sharded churn-repair session diverged from the sequential session"
    );
    assert_eq!(shard_rounds, seq_rounds, "repair round charging diverged");
    let scenario_name = format!("torus churn({inserts}+{deletes})x{batches}");
    table.push_row(vec![
        "churn-repair".to_string(),
        scenario_name.clone(),
        torus.m().to_string(),
        shards.to_string(),
        format!("{:.4}", report.cut_fraction),
        format!("{:.3}", report.balance_factor),
        format!("{partition_ms:.1}"),
        format!("{wall_ms:.1}"),
        format!("{seq_wall_ms:.1}"),
        fmt_opt(None, 1.0),
        fmt_opt(None, 1.0),
        identical.to_string(),
    ]);
    measurements.push(ShardMeasurement {
        workload: "churn-repair".to_string(),
        graph: scenario_name,
        n: torus.n(),
        m: torus.m(),
        shards,
        cut_fraction: report.cut_fraction,
        balance_factor: report.balance_factor,
        partition_ms,
        wall_ms,
        seq_wall_ms,
        rounds: shard_rounds,
        cross_messages_per_round: None,
        cross_bytes_per_round: None,
        identical_to_sequential: identical,
        repaired_edges: Some(shard_repaired),
        peak_rss_bytes: peak_rss_bytes(),
    });

    (table, measurements)
}

/// One measured configuration of the [`run_fault`] experiment (one row of
/// the `fault` array of the `edgecolor-bench/v1` JSON document; field
/// semantics in `docs/BENCH_SCHEMA.md`).
///
/// Every field except [`FaultMeasurement::wall_ms`] is deterministic —
/// seed-driven adversary, seed-driven graphs — so the `bench-regression`
/// CI job diffs these rows *exactly* against the committed baseline.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMeasurement {
    /// `"flood"` (a strict-layer program run under the adversary) or
    /// `"recovery"` (corruption + self-stabilizing repair of a coloring).
    pub workload: String,
    /// Graph description.
    pub graph: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// The adversary seed.
    pub seed: u64,
    /// Configured drop rate, in permille.
    pub drop_permille: u32,
    /// Configured duplicate rate, in permille.
    pub duplicate_permille: u32,
    /// Configured delay rate, in permille.
    pub delay_permille: u32,
    /// Number of crash windows in the plan.
    pub crashes: usize,
    /// Number of shard-link cuts in the plan.
    pub link_cuts: usize,
    /// Rounds charged by the measured execution (flood) or by the repair
    /// pass (recovery).
    pub rounds: u64,
    /// Messages that arrived (flood rows; 0 for recovery).
    pub delivered: u64,
    /// Messages dropped by the rate adversary.
    pub dropped: u64,
    /// Extra copies injected by the duplication adversary.
    pub duplicated: u64,
    /// Messages held back by the delay adversary.
    pub delayed: u64,
    /// Messages lost to crash windows.
    pub crash_dropped: u64,
    /// Messages lost on severed shard links.
    pub partition_dropped: u64,
    /// Edges corrupted by the adversary (recovery rows).
    pub corrupted_edges: Option<u64>,
    /// Conflicts the incremental detector found (recovery rows).
    pub conflicts_found: Option<u64>,
    /// Edges the self-stabilizing repair recolored (recovery rows).
    pub repaired_edges: Option<u64>,
    /// Whether the run was bit-identical across
    /// Sequential/Parallel/Sharded policies (asserted in-harness — a
    /// `false` never survives a run).
    pub identical_across_policies: bool,
    /// Wall-clock milliseconds of the measured (sequential) execution.
    pub wall_ms: f64,
}

/// The fault adversary configurations of the FAULT experiment. Shared by
/// `quick` and `smoke` runs (the graphs are modest either way), so the rows
/// the CI smoke run emits are key-comparable to the committed baseline.
fn fault_configs() -> Vec<(String, Graph, FaultPlan)> {
    let torus = generators::grid_torus(24, 24);
    let regular = generators::random_regular(512, 8, 42).expect("feasible");
    let mut configs = Vec::new();
    for (name, graph, seed) in [
        ("grid_torus(24x24)", torus, 1017u64),
        ("random_regular(512,8)", regular, 2029),
    ] {
        // A rates-only adversary and a full adversary (rates + crashes +
        // healing link partitions) per graph.
        let rates = FaultPlan::new(seed)
            .with_drop_rate(0.05)
            .with_duplicate_rate(0.02)
            .with_delay_rate(0.04, 3);
        let full = FaultPlan::new(seed ^ 0xF417)
            .with_drop_rate(0.08)
            .with_duplicate_rate(0.03)
            .with_delay_rate(0.05, 3)
            .with_crash(NodeId::new(3), 2, 5)
            .with_crash(NodeId::new(17), 3, 6)
            .with_partition_granularity(4)
            .with_link_cut(0, 1, 2, 3)
            .with_link_cut(2, 3, 4, 2);
        configs.push((format!("{name}/rates"), graph.clone(), rates));
        configs.push((format!("{name}/full"), graph, full));
    }
    configs
}

/// FAULT — the adversary experiment: flooding under seed-driven faults
/// (drops, duplicates, delays, crashes, healing link partitions) plus
/// corruption-recovery through the self-stabilizing repair pipeline.
///
/// Per configuration the harness (a) runs the flood program under the plan
/// sequentially, under `Parallel{4}` and under `Sharded{4,2}`, asserting
/// the three runs are bit-identical (the determinism-under-faults
/// contract), and (b) corrupts a fraction of a maintained coloring with the
/// plan's seed, stabilizes, and re-validates through the full checkers.
/// All recorded quantities except wall-clock are deterministic, which is
/// what makes the rows a CI regression contract (see
/// [`crate::regression`]).
pub fn run_fault() -> (Table, Vec<FaultMeasurement>) {
    const FLOOD_ROUNDS: u32 = 8;
    let mut table = Table::new(
        "FAULT",
        "Fault adversary: delivery losses, recovery cost and policy bit-identity",
        &[
            "workload",
            "graph",
            "m",
            "seed",
            "rounds",
            "delivered",
            "dropped",
            "dup",
            "delayed",
            "crash drop",
            "cut drop",
            "conflicts",
            "repaired",
            "identical",
            "wall ms",
        ],
    );
    let mut measurements = Vec::new();
    let params = ColoringParams::new(0.5);
    for (name, graph, plan) in fault_configs() {
        let ids = IdAssignment::scattered(graph.n(), 7);
        let make = |_| ScaleFlood {
            best: 0,
            rounds_left: FLOOD_ROUNDS,
        };
        // Flood under the adversary: sequential reference plus the policy
        // bit-identity assertion.
        let started = Instant::now();
        let reference = run_program_under_faults(
            &graph,
            &ids,
            Model::Local,
            ExecutionPolicy::Sequential,
            u64::from(FLOOD_ROUNDS) + 6,
            plan.clone(),
            make,
        );
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut identical = true;
        for policy in [ExecutionPolicy::parallel(4), ExecutionPolicy::sharded(4, 2)] {
            let run = run_program_under_faults(
                &graph,
                &ids,
                Model::Local,
                policy,
                u64::from(FLOOD_ROUNDS) + 6,
                plan.clone(),
                make,
            );
            identical &= run.outputs == reference.outputs
                && run.metrics == reference.metrics
                && run.faults == reference.faults;
        }
        assert!(identical, "{name}: faulty flood diverged across policies");
        let stats = reference.faults.expect("faulty run carries stats");
        table.push_row(vec![
            "flood".to_string(),
            name.clone(),
            graph.m().to_string(),
            plan.seed().to_string(),
            reference.metrics.rounds.to_string(),
            stats.delivered.to_string(),
            stats.dropped.to_string(),
            stats.duplicated.to_string(),
            stats.delayed.to_string(),
            stats.crash_dropped.to_string(),
            stats.partition_dropped.to_string(),
            "-".to_string(),
            "-".to_string(),
            identical.to_string(),
            format!("{wall_ms:.1}"),
        ]);
        let (drop_pm, dup_pm, delay_pm, crashes, cuts) = plan_shape(&plan);
        measurements.push(FaultMeasurement {
            workload: "flood".to_string(),
            graph: name.clone(),
            n: graph.n(),
            m: graph.m(),
            seed: plan.seed(),
            drop_permille: drop_pm,
            duplicate_permille: dup_pm,
            delay_permille: delay_pm,
            crashes,
            link_cuts: cuts,
            rounds: reference.metrics.rounds,
            delivered: stats.delivered,
            dropped: stats.dropped,
            duplicated: stats.duplicated,
            delayed: stats.delayed,
            crash_dropped: stats.crash_dropped,
            partition_dropped: stats.partition_dropped,
            corrupted_edges: None,
            conflicts_found: None,
            repaired_edges: None,
            identical_across_policies: identical,
            wall_ms,
        });

        // Recovery: corrupt ~5% of the coloring with the plan's seed, then
        // self-stabilize and fully re-validate.
        let dg = DynamicGraph::from_graph(graph.clone());
        let (rec, _) =
            Recoloring::color_initial(&dg, &ids, &params).expect("valid initial instance");
        let palette = rec.palette();
        let mut session = SelfStabilizing::new(rec);
        let corrupt = (graph.m() / 20).max(8);
        let started = Instant::now();
        let touched = session.inject_corruption(dg.graph(), plan.seed(), corrupt);
        let report = session
            .stabilize(&dg, &touched, &ids, &params)
            .expect("stabilizable");
        let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
        check_proper_edge_coloring(dg.graph(), session.coloring()).assert_ok();
        check_complete(dg.graph(), session.coloring()).assert_ok();
        check_delta(dg.graph(), session.coloring(), &report.touched, palette).assert_ok();
        table.push_row(vec![
            "recovery".to_string(),
            name.clone(),
            graph.m().to_string(),
            plan.seed().to_string(),
            report.metrics.rounds.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            report.conflicts_found.to_string(),
            report.repaired_edges.to_string(),
            "true".to_string(),
            format!("{recovery_ms:.1}"),
        ]);
        measurements.push(FaultMeasurement {
            workload: "recovery".to_string(),
            graph: name,
            n: graph.n(),
            m: graph.m(),
            seed: plan.seed(),
            drop_permille: drop_pm,
            duplicate_permille: dup_pm,
            delay_permille: delay_pm,
            crashes,
            link_cuts: cuts,
            rounds: report.metrics.rounds,
            delivered: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            crash_dropped: 0,
            partition_dropped: 0,
            corrupted_edges: Some(touched.len() as u64),
            conflicts_found: Some(report.conflicts_found as u64),
            repaired_edges: Some(report.repaired_edges as u64),
            identical_across_policies: true,
            wall_ms: recovery_ms,
        });
    }
    (table, measurements)
}

/// The configured shape of a plan, for the measurement record.
fn plan_shape(plan: &FaultPlan) -> (u32, u32, u32, usize, usize) {
    let rates = plan.rates();
    (
        rates.drop_permille,
        rates.duplicate_permille,
        rates.delay_permille,
        plan.crashes().len(),
        plan.link_cuts().len(),
    )
}

/// One measured row of the IO experiment: a (graph, load-method) pair.
///
/// The load methods (`text_parse` / `binary_decode` / `zero_copy_open`)
/// measure cold-start cost from a file on disk to a queryable graph; the
/// reorder rows (`reorder_off` / `reorder_rcm`) measure the locality pass
/// and its effect on round throughput through the flat-arena engine. All
/// wall-clock fields are host noise ([`Rule::Ignore`]); the structural
/// fields (`file_bytes`, `adjacency_checksum`, `mean_edge_span`) are
/// deterministic and diffed by the regression contract, and
/// `gated_speedup_vs_text` carries the ≥ 10× cold-start floor on the
/// million-edge torus `zero_copy_open` row.
///
/// [`Rule::Ignore`]: crate::regression::Rule::Ignore
#[derive(Debug, Clone, Serialize)]
pub struct IoMeasurement {
    /// Graph description, e.g. `grid_torus(1000x500)`.
    pub graph: String,
    /// `text_parse`, `binary_decode`, `zero_copy_open`, `reorder_off` or
    /// `reorder_rcm`.
    pub method: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// On-disk size of the artifact this method loads (text edge list or
    /// binary snapshot); `None` for the reorder rows. Deterministic.
    pub file_bytes: Option<u64>,
    /// Load methods: wall-clock ms from the file on disk to a queryable
    /// graph (text: parse + CSR build; binary: validate + materialize;
    /// zero-copy: open-time validation only). Reorder rows: the cost of the
    /// reordering pass itself (permutation + renumber; 0 for `reorder_off`).
    pub cold_start_ms: f64,
    /// Wall-clock ms from the file on disk through one executed flooding
    /// round (cold start + `Network` build + init + 1 round). `None` for
    /// `zero_copy_open` (the view serves point queries without
    /// materializing) and the reorder rows.
    pub first_round_ms: Option<f64>,
    /// Process peak RSS (`VmHWM`) observed after this measurement; a
    /// monotone high-water mark, so informational only.
    pub peak_rss_bytes: Option<u64>,
    /// Order-sensitive digest of the adjacency this method serves
    /// (folded to 32 bits). Identical across the three load methods by
    /// construction — the regression contract diffs it exactly.
    pub adjacency_checksum: u64,
    /// `text cold-start / this cold-start`; `None` on the text row itself
    /// and the reorder rows. Host-dependent, never diffed.
    pub speedup_vs_text: Option<f64>,
    /// Same ratio, populated only where the acceptance floor applies (the
    /// zero-copy open path on the million-edge torus); the regression
    /// contract requires the fresh value to stay ≥ 10.
    pub gated_speedup_vs_text: Option<f64>,
    /// Flooding rounds per wall-clock second on this row's node order
    /// (reorder rows only). Host-dependent.
    pub rounds_per_sec: Option<f64>,
    /// Mean `|u − v|` over all edges in this row's node order (reorder rows
    /// only): the locality metric the reordering pass optimizes.
    /// Deterministic, diffed within float tolerance.
    pub mean_edge_span: Option<f64>,
}

/// Order-sensitive adjacency digest (FNV-1a over every `(neighbor, edge)`
/// pair in CSR order, folded to 32 bits so it survives the JSON `i64`
/// round-trip). The zero-copy twin below must mirror any change here.
fn adjacency_checksum_graph(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in g.nodes() {
        for nb in g.neighbors(v) {
            mix(nb.node.index() as u64);
            mix(nb.edge.index() as u64);
        }
    }
    (h ^ (h >> 32)) & 0xffff_ffff
}

/// [`adjacency_checksum_graph`] served through the zero-copy view instead
/// of a materialized [`Graph`] — same digest on the same snapshot.
fn adjacency_checksum_view(view: &diststore::SnapshotView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in 0..view.n() {
        for nb in view.neighbors(NodeId::new(v)) {
            mix(nb.node.index() as u64);
            mix(nb.edge.index() as u64);
        }
    }
    (h ^ (h >> 32)) & 0xffff_ffff
}

/// Mean `|u − v|` over all edges: the bandwidth-style locality metric the
/// reordering pass optimizes. Deterministic for a fixed graph.
fn mean_edge_span(g: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let total: u64 = g
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            u.index().abs_diff(v.index()) as u64
        })
        .sum();
    total as f64 / g.m() as f64
}

/// The graph suite of the IO experiment. Like FAULT, the configurations are
/// shared by every selector size so the rows a CI smoke run emits stay
/// key-comparable to the committed baseline — which is what lets the
/// regression contract hold the million-edge torus cold-start floor
/// (`gated` = true) on every run.
fn io_configs() -> Vec<(String, Graph, bool)> {
    vec![
        (
            "grid_torus(1000x500)".to_string(),
            generators::grid_torus(1000, 500),
            true,
        ),
        (
            "power_law(120000,2.5,64)".to_string(),
            generators::power_law(120_000, 2.5, 64, 7),
            false,
        ),
    ]
}

/// IO — the out-of-core substrate experiment: cold-start cost of the three
/// load paths (text edge-list parse, validated binary decode, zero-copy
/// snapshot open) plus the locality-reordering pass, per graph.
///
/// Per configuration the harness writes a text edge list and a binary
/// snapshot to the temp directory, then measures best-of-`reps` wall clock
/// from the file to (a) a queryable graph and (b) one executed flooding
/// round, asserting all three paths serve the bit-identical adjacency (the
/// digest lands in the regression contract). The reorder rows run the same
/// flooding program on the original and the RCM-renumbered node order and
/// record the deterministic `mean_edge_span` shift alongside the
/// host-dependent throughput. The ≥ 10× cold-start acceptance floor is
/// carried by `gated_speedup_vs_text` on the million-edge torus
/// `zero_copy_open` row (see [`crate::regression::IO_FIELDS`]).
pub fn run_io() -> (Table, Vec<IoMeasurement>) {
    use distgraph::{reorder_permutation, ReorderStrategy};
    use diststore::{read_edge_list, write_edge_list, LoadedSnapshot, Snapshot, SnapshotSource};

    const REPS: usize = 2;
    const REORDER_FLOOD_ROUNDS: u32 = 4;
    let mut table = Table::new(
        "IO",
        "Out-of-core load paths: cold start, zero-copy open and locality reordering",
        &[
            "graph",
            "method",
            "n",
            "m",
            "file MB",
            "cold ms",
            "round ms",
            "vs text",
            "gate",
            "rounds/s",
            "edge span",
            "rss MB",
            "checksum",
        ],
    );
    let mut measurements = Vec::new();
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    for (name, graph, gated) in io_configs() {
        let txt_path = tmp.join(format!("edgecolor_io_{pid}_{}.txt", measurements.len()));
        let snap_path = tmp.join(format!("edgecolor_io_{pid}_{}.snap", measurements.len()));
        write_edge_list(&graph, &txt_path).expect("text edge list writes");
        SnapshotSource::graph(&graph)
            .write_to(&snap_path)
            .expect("snapshot writes");
        let file_len = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).ok();
        let (txt_bytes, snap_bytes) = (file_len(&txt_path), file_len(&snap_path));
        let ids = IdAssignment::scattered(graph.n(), 1);
        let one_round = |g: &Graph| {
            run_program_with(
                g,
                &ids,
                Model::Local,
                ExecutionPolicy::Sequential,
                4,
                |_| ScaleFlood {
                    best: 0,
                    rounds_left: 1,
                },
            )
        };
        let reference_checksum = adjacency_checksum_graph(&graph);

        // The three load paths: best-of-REPS cold start (file → queryable)
        // and first-round (file → one executed flooding round) per method.
        // `zero_copy_open` stops at the validated view — its whole point is
        // serving point queries without materializing — so its first-round
        // column is empty and its cold start is held to the same digest via
        // the view accessors.
        // (method, file_bytes, cold_ms, first_round_ms, adjacency digest)
        type LoadRow = (String, Option<u64>, f64, Option<f64>, u64);
        let mut rows: Vec<LoadRow> = Vec::new();
        {
            let mut cold = f64::INFINITY;
            let mut first = f64::INFINITY;
            let mut checksum = 0;
            for _ in 0..REPS {
                let started = Instant::now();
                let g = read_edge_list(&txt_path).expect("text edge list parses");
                cold = cold.min(started.elapsed().as_secs_f64() * 1e3);
                let _run = one_round(&g);
                first = first.min(started.elapsed().as_secs_f64() * 1e3);
                checksum = adjacency_checksum_graph(&g);
            }
            rows.push((
                "text_parse".to_string(),
                txt_bytes,
                cold,
                Some(first),
                checksum,
            ));
        }
        {
            let mut cold = f64::INFINITY;
            let mut first = f64::INFINITY;
            let mut checksum = 0;
            for _ in 0..REPS {
                let started = Instant::now();
                let snapshot = Snapshot::open(&snap_path).expect("snapshot opens");
                let loaded = LoadedSnapshot::load(&snapshot).expect("snapshot materializes");
                cold = cold.min(started.elapsed().as_secs_f64() * 1e3);
                let _run = one_round(loaded.graph());
                first = first.min(started.elapsed().as_secs_f64() * 1e3);
                checksum = adjacency_checksum_graph(loaded.graph());
            }
            rows.push((
                "binary_decode".to_string(),
                snap_bytes,
                cold,
                Some(first),
                checksum,
            ));
        }
        {
            let mut cold = f64::INFINITY;
            let mut checksum = 0;
            for _ in 0..REPS {
                let started = Instant::now();
                let snapshot = Snapshot::open(&snap_path).expect("snapshot opens");
                std::hint::black_box(snapshot.view().degree(NodeId::new(0)));
                cold = cold.min(started.elapsed().as_secs_f64() * 1e3);
                checksum = adjacency_checksum_view(&snapshot.view());
            }
            rows.push((
                "zero_copy_open".to_string(),
                snap_bytes,
                cold,
                None,
                checksum,
            ));
        }
        let text_cold = rows[0].2;
        for (method, file_bytes, cold, first, checksum) in rows {
            assert_eq!(
                checksum, reference_checksum,
                "{name}/{method}: served adjacency diverged from the generated graph"
            );
            let speedup = (method != "text_parse").then(|| text_cold / cold);
            // Only the zero-copy open row carries the hard floor: it is the
            // "open → first round runnable" path the acceptance criterion
            // names, and it clears 10× with margin on every host we measure.
            // `binary_decode` pays an extra O(n + m) materialization copy
            // that leaves it straddling the floor on slow-memory hosts, so
            // its ratio stays informational (`speedup_vs_text`).
            let gated_speedup = (gated && method == "zero_copy_open").then(|| text_cold / cold);
            push_io_row(
                &mut table,
                &mut measurements,
                IoMeasurement {
                    graph: name.clone(),
                    method,
                    n: graph.n(),
                    m: graph.m(),
                    file_bytes,
                    cold_start_ms: cold,
                    first_round_ms: first,
                    peak_rss_bytes: peak_rss_bytes(),
                    adjacency_checksum: checksum,
                    speedup_vs_text: speedup,
                    gated_speedup_vs_text: gated_speedup,
                    rounds_per_sec: None,
                    mean_edge_span: None,
                },
            );
        }
        std::fs::remove_file(&txt_path).ok();
        std::fs::remove_file(&snap_path).ok();

        // Reorder on/off: the same flooding program on the original and the
        // RCM-renumbered node order. `mean_edge_span` is the deterministic
        // effect; rounds/s is the host-dependent one.
        let started = Instant::now();
        let perm = reorder_permutation(&graph, ReorderStrategy::Rcm);
        let reordered = graph.renumber_nodes(&perm);
        let reorder_ms = started.elapsed().as_secs_f64() * 1e3;
        for (method, g, cold) in [
            ("reorder_off", &graph, 0.0),
            ("reorder_rcm", &reordered, reorder_ms),
        ] {
            let g_ids = IdAssignment::scattered(g.n(), 1);
            let mut wall_ms = f64::INFINITY;
            let mut rounds = 0;
            for _ in 0..REPS {
                let started = Instant::now();
                let run = run_program_with(
                    g,
                    &g_ids,
                    Model::Local,
                    ExecutionPolicy::Sequential,
                    u64::from(REORDER_FLOOD_ROUNDS) + 2,
                    |_| ScaleFlood {
                        best: 0,
                        rounds_left: REORDER_FLOOD_ROUNDS,
                    },
                );
                wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
                rounds = run.metrics.rounds;
            }
            push_io_row(
                &mut table,
                &mut measurements,
                IoMeasurement {
                    graph: name.clone(),
                    method: method.to_string(),
                    n: g.n(),
                    m: g.m(),
                    file_bytes: None,
                    cold_start_ms: cold,
                    first_round_ms: None,
                    peak_rss_bytes: peak_rss_bytes(),
                    adjacency_checksum: adjacency_checksum_graph(g),
                    speedup_vs_text: None,
                    gated_speedup_vs_text: None,
                    rounds_per_sec: Some(rounds as f64 / (wall_ms / 1e3).max(1e-9)),
                    mean_edge_span: Some(mean_edge_span(g)),
                },
            );
        }
    }
    (table, measurements)
}

/// Formats one [`IoMeasurement`] into the IO table and the measurement
/// array (single source for both, so they cannot drift apart).
fn push_io_row(table: &mut Table, measurements: &mut Vec<IoMeasurement>, m: IoMeasurement) {
    let opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
    table.push_row(vec![
        m.graph.clone(),
        m.method.clone(),
        m.n.to_string(),
        m.m.to_string(),
        m.file_bytes
            .map_or("-".to_string(), |b| format!("{:.2}", b as f64 / 1048576.0)),
        format!("{:.1}", m.cold_start_ms),
        opt(m.first_round_ms),
        opt(m.speedup_vs_text),
        opt(m.gated_speedup_vs_text),
        opt(m.rounds_per_sec),
        opt(m.mean_edge_span),
        m.peak_rss_bytes
            .map_or("-".to_string(), |b| format!("{:.0}", b as f64 / 1048576.0)),
        format!("{:08x}", m.adjacency_checksum),
    ]);
    measurements.push(m);
}

/// E11 — baseline color-count comparison.
pub fn run_e11(deltas: &[usize]) -> Table {
    let mut table = Table::new(
        "E11",
        "Colors used: baselines vs this paper (random Δ-regular graphs)",
        &[
            "Δ",
            "Misra–Gries (Δ+1)",
            "greedy seq",
            "greedy classes",
            "randomized",
            "ours LOCAL",
            "ours CONGEST",
        ],
    );
    for &delta in deltas {
        let graph = regular_graph(delta, 19);
        let ids = ids_for(&graph, 7);
        let params = ColoringParams::new(0.5);
        let ours_local = color_edges_local(&graph, &ids, &params).expect("valid instance");
        let ours_congest = color_congest(&graph, &ids, &params);
        table.push_row(vec![
            delta.to_string(),
            baselines::misra_gries(&graph).palette_size().to_string(),
            baselines::greedy_sequential(&graph)
                .palette_size()
                .to_string(),
            baselines::greedy_by_classes(&graph, &ids, Model::Local)
                .colors_used
                .to_string(),
            baselines::randomized_coloring(&graph, 3, Model::Local)
                .colors_used
                .to_string(),
            ours_local.coloring.palette_size().to_string(),
            ours_congest.colors_used.to_string(),
        ]);
    }
    table
}

/// One SERVE row: the serving daemon under the deterministic loadgen mix.
/// Keyed by `(graph, clients, read_permille, graphs, inflight)`. Every
/// count except `retries`, `ticks` and the wall-clock-derived fields is
/// deterministic: the loadgen's disjoint-anchor workload admits the same
/// operations regardless of thread interleaving, pipelining depth and
/// client→graph spread, and coalescing only changes *which* tick repairs
/// an insert, never how many edges get repaired in total. Multi-tenant
/// rows sum the per-tenant counters and merge the latency histograms;
/// `n`/`m0`/`final_m` stay per-tenant (every tenant serves the same torus
/// and receives the same per-tenant workload shape).
#[derive(Debug, Clone, Serialize)]
pub struct ServeMeasurement {
    /// Graph description, e.g. `grid_torus(80x80)`.
    pub graph: String,
    /// Concurrent loadgen clients.
    pub clients: usize,
    /// Reads per 1000 operations in the seeded mix.
    pub read_permille: u32,
    /// Tenants served by the daemon (loadgen spreads clients across them).
    pub graphs: usize,
    /// Requests each loadgen connection keeps in flight (1 = strict
    /// request-reply).
    pub inflight: usize,
    /// Number of nodes (per tenant).
    pub n: usize,
    /// Edge count before the run (per tenant).
    pub m0: usize,
    /// Edge count after every admitted batch applied (summed over
    /// tenants).
    pub final_m: usize,
    /// Total operations the loadgen issued (reads + admitted writes).
    pub ops: u64,
    /// Lookup operations issued.
    pub reads: u64,
    /// Admitted mutation batches (client-side count — deterministic,
    /// unlike the server's rejected counter which sees backpressure
    /// retries).
    pub accepted: u64,
    /// Deliberate duplicate submissions rejected (exactly one per client).
    pub rejected: u64,
    /// Backpressure retries (QueueFull/SwapInProgress) — timing-dependent.
    pub retries: u64,
    /// Wire-level protocol errors the daemon observed. Must stay 0.
    pub protocol_errors: u64,
    /// Edges (re)colored across all coalesced repairs — equals the number
    /// of admitted inserts while the palette budget holds.
    pub repaired_edges: u64,
    /// Full-recolor fallbacks — stays 0 while the headroom provisioning
    /// absorbs the workload's degree growth.
    pub full_recolors: u64,
    /// Final coloring passed `check_proper_edge_coloring` + `check_complete`.
    pub checker_valid: bool,
    /// Final coloring is bit-identical to a sequential replay of the
    /// daemon's coalesced batch log through a fresh repair session.
    pub replay_equivalent: bool,
    /// Operations per second over the loadgen wall clock.
    pub qps: f64,
    /// Repair latency percentiles from the daemon's log-bucket histogram,
    /// merged across tenants (ms).
    pub p50_ms: f64,
    /// 95th percentile repair latency (ms).
    pub p95_ms: f64,
    /// 99th percentile repair latency (ms).
    pub p99_ms: f64,
    /// 99.9th percentile repair latency (ms) — the SLO tail the histogram
    /// buckets exist to expose.
    pub repair_p999_ms: f64,
    /// Ticks that applied at least one coalesced batch (summed over
    /// tenants).
    pub ticks: u64,
    /// Loadgen wall clock (ms).
    pub wall_ms: f64,
}

/// SERVE: the edge-coloring daemon under a concurrent seeded read/write
/// mix (experiment behind `make serve-smoke` at CI scale and the
/// million-edge torus row on full runs).
///
/// Each configuration boots an in-process daemon ([`distserve::ServerCore`]
/// plus the TCP front door), replays the deterministic loadgen mix against
/// it over real sockets, then audits the outcome in-harness: the final
/// coloring
/// must be checker-valid and bit-identical to a sequential replay of the
/// coalesced batch log (the daemon's post-repair stabilize pass is a
/// certify-only no-op on a clean coloring, so plain repair replay must
/// agree exactly).
pub fn run_serve(full_size: bool) -> (Table, Vec<ServeMeasurement>) {
    use distserve::loadgen::{run_against, LoadgenConfig};
    use distserve::{Client, DaemonHandle, LatencyHistogram, ServeConfig, ServerCore, Tenant};

    let mut table = Table::new(
        "SERVE",
        "Serving daemon: concurrent seeded read/write mix, coalesced repairs, replay audit",
        &[
            "graph",
            "clients",
            "read‰",
            "graphs",
            "inflight",
            "n",
            "m0",
            "final m",
            "ops",
            "reads",
            "accepted",
            "rejected",
            "proto errs",
            "repaired",
            "full recolors",
            "checker",
            "replay",
            "qps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
            "ticks",
            "wall ms",
        ],
    );
    let mut measurements = Vec::new();

    // The small toruses run at every selector size so the rows stay
    // key-comparable to the committed baseline — one strict
    // request-reply single-tenant row and one pipelined two-tenant row;
    // the million-edge torus (the ISSUE's serving target) only on full
    // runs.
    let mut configs: Vec<(usize, usize, usize, usize, usize)> =
        vec![(80, 80, 1500, 1, 1), (48, 48, 600, 2, 8)];
    if full_size {
        configs.push((1000, 500, 2000, 1, 1));
    }
    for (rows, cols, ops_per_client, graphs, inflight) in configs {
        let graph_label = format!("grid_torus({rows}x{cols})");
        let config = ServeConfig::default();
        let headroom = config.headroom;
        let tenants: Vec<Tenant> = (0..graphs)
            .map(|g| {
                Tenant::new(
                    format!("t{g}"),
                    generators::grid_torus(rows, cols),
                    config.clone(),
                )
                .expect("daemon boots")
            })
            .collect();
        let (n, m0) = (rows * cols, 2 * rows * cols);
        let max_deg0 = 4;
        let daemon = DaemonHandle::spawn(ServerCore::from_tenants(tenants)).expect("daemon binds");
        let lg = LoadgenConfig {
            rows,
            cols,
            clients: 4,
            ops_per_client,
            read_permille: 700,
            seed: 42,
            graphs,
            inflight,
        };
        let report = run_against(daemon.addr(), &lg).expect("loadgen completes");

        // Drain every tenant, then fold its counters and histograms into
        // the row.
        let mut client = Client::connect(daemon.addr()).expect("connect");
        let mut final_m = 0usize;
        let mut repaired_edges = 0u64;
        let mut full_recolors = 0u64;
        let mut ticks = 0u64;
        let mut repair_hist = LatencyHistogram::default();
        let mut protocol_errors = 0u64;
        for g in 0..graphs {
            client.set_graph(g as u32);
            client.flush().expect("flush");
            let metrics = client.metrics().expect("metrics");
            repaired_edges += metrics.repaired_edges;
            full_recolors += metrics.full_recolors;
            ticks += metrics.ticks;
            repair_hist.merge(&metrics.repair);
            protocol_errors = metrics.protocol_errors; // connection-level, same everywhere
        }
        let core = daemon.core().clone();
        daemon.shutdown();
        assert_eq!(
            core.internal_errors(),
            0,
            "{graph_label}: daemon hit internal errors"
        );

        // In-harness audit per tenant: checker validity and batch-log
        // replay equivalence are part of the regression contract, not
        // just test suite properties.
        let mut checker_valid = true;
        let mut replay_equivalent = true;
        for tenant in core.tenants() {
            let st = tenant.state_snapshot();
            let served = st.dynamic().graph();
            final_m += served.m();
            checker_valid = checker_valid
                && check_proper_edge_coloring(served, st.coloring()).is_ok()
                && check_complete(served, st.coloring()).is_ok();
            let log = tenant.batch_log();
            let ids = st.ids().clone();
            let params = *tenant.params();
            let budget = edgecolor::default_palette(max_deg0 + headroom);
            let mut dg = DynamicGraph::from_graph(generators::grid_torus(rows, cols));
            let (mut rec, _) =
                Recoloring::with_budget(&dg, &ids, &params, budget).expect("replay boots");
            let mut tenant_ok = true;
            for (_, batch) in &log {
                let diff = dg.apply(batch).expect("logged batches replay cleanly");
                if rec.repair(&dg, &diff, &ids, &params).is_err() {
                    tenant_ok = false;
                    break;
                }
            }
            replay_equivalent = replay_equivalent
                && tenant_ok
                && dg.graph().m() == served.m()
                && rec.coloring() == st.coloring();
        }

        let m = ServeMeasurement {
            graph: graph_label,
            clients: lg.clients,
            read_permille: lg.read_permille,
            graphs,
            inflight,
            n,
            m0,
            final_m,
            ops: report.ops,
            reads: report.reads,
            accepted: report.accepted,
            rejected: report.rejected,
            retries: report.retries,
            protocol_errors,
            repaired_edges,
            full_recolors,
            checker_valid,
            replay_equivalent,
            qps: report.qps,
            p50_ms: repair_hist.p50_ms(),
            p95_ms: repair_hist.p95_ms(),
            p99_ms: repair_hist.p99_ms(),
            repair_p999_ms: repair_hist.p999_ms(),
            ticks,
            wall_ms: report.wall_ms,
        };
        table.push_row(vec![
            m.graph.clone(),
            m.clients.to_string(),
            m.read_permille.to_string(),
            m.graphs.to_string(),
            m.inflight.to_string(),
            m.n.to_string(),
            m.m0.to_string(),
            m.final_m.to_string(),
            m.ops.to_string(),
            m.reads.to_string(),
            m.accepted.to_string(),
            m.rejected.to_string(),
            m.protocol_errors.to_string(),
            m.repaired_edges.to_string(),
            m.full_recolors.to_string(),
            m.checker_valid.to_string(),
            m.replay_equivalent.to_string(),
            format!("{:.0}", m.qps),
            format!("{:.2}", m.p50_ms),
            format!("{:.2}", m.p95_ms),
            format!("{:.2}", m.p99_ms),
            format!("{:.2}", m.repair_p999_ms),
            m.ticks.to_string(),
            format!("{:.1}", m.wall_ms),
        ]);
        measurements.push(m);
    }
    (table, measurements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_is_stable() {
        let mut t = Table::new("T", "test", &["a", "bbbb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## T — test"));
        assert!(s.contains("bbbb"));
    }

    #[test]
    fn small_experiments_run_quickly_and_validate() {
        // Smoke-test the harness with tiny sizes so `cargo test` stays fast.
        let e1 = run_e1(&[4]);
        assert_eq!(e1.rows.len(), 1);
        let e4 = run_e4(&[32], &[1, 4]);
        assert_eq!(e4.rows.len(), 2);
        let e5 = run_e5(&[8], &[0.5]);
        assert_eq!(e5.rows.len(), 1);
        // Defect ratio must be within the Corollary 5.7 bound.
        let ratio: f64 = e5.rows[0][2].parse().unwrap();
        assert!(ratio <= 1.0 + 1e-9);
        let e6 = run_e6(&[8]);
        assert_eq!(e6.rows.len(), 1);
        let e7 = run_e7(&[64]);
        assert_eq!(e7.rows[0][3], "0");
    }

    #[test]
    fn scale_experiment_smoke_runs_and_is_deterministic() {
        let (table, measurements) = run_scale(&[1, 2, 3], false);
        assert_eq!(table.rows.len(), measurements.len());
        assert_eq!(measurements.len(), 3 * 3);
        for m in &measurements {
            // Determinism is the unconditional guarantee, on any host.
            assert!(m.identical_to_sequential, "{}: diverged", m.graph);
            assert!(m.wall_ms >= 0.0);
            assert!(m.rounds > 0);
            assert!(m.messages > 0);
            assert!(m.rounds_per_sec > 0.0);
            // Flooding moves payload every round, so the deterministic
            // delivered-bytes column is strictly positive.
            assert!(m.bytes_per_round > 0.0);
            // The unit-test binary installs no counting allocator, so the
            // hook stays at zero and the column must honestly report 0.
            assert_eq!(m.allocs_per_round, 0);
            // Down-scaled smoke runs never carry a wall-clock expectation.
            assert_eq!(m.speedup_floor, None);
            assert!(m.meets_floor);
        }
        // The sequential row of each graph has speedup exactly 1.
        for chunk in measurements.chunks(3) {
            assert_eq!(chunk[0].threads, 1);
            assert!((chunk[0].speedup_vs_sequential - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn speedup_floor_is_gated_on_host_parallelism() {
        // The sequential baseline and any host that cannot run the workers
        // on real cores carry no expectation: a 1-CPU container (the host
        // that recorded BENCH_1.json) must not read ~0.9× as a regression.
        assert_eq!(expected_speedup_floor(1, 64), None);
        assert_eq!(expected_speedup_floor(4, 1), None);
        assert_eq!(expected_speedup_floor(8, 4), None); // oversubscribed
        assert_eq!(expected_speedup_floor(2, 1), None);
        // With enough hardware the floors are real: 2-thread runs must not
        // lose, and the ≥2× @ ≥4-thread expectation auto-activates as soon
        // as the host has ≥ 4 cores backing the workers (threads ≥ 4 passes
        // the oversubscription gate only when host ≥ 4).
        assert_eq!(expected_speedup_floor(2, 2), Some(1.05));
        assert_eq!(expected_speedup_floor(4, 4), Some(2.0));
        assert_eq!(expected_speedup_floor(4, 8), Some(2.0));
        assert_eq!(expected_speedup_floor(8, 8), Some(2.0));
    }

    #[test]
    fn shard_experiment_smoke_runs_and_validates() {
        let (table, measurements) = run_shard(false);
        // 3 graphs × 3 shard counts (flood) + 1 churn-repair row.
        assert_eq!(measurements.len(), 10);
        assert_eq!(table.rows.len(), 10);
        for m in &measurements {
            // Bit-identity is asserted in-harness on any host; a false here
            // cannot survive the run.
            assert!(m.identical_to_sequential, "{}: diverged", m.graph);
            assert!((0.0..=1.0).contains(&m.cut_fraction), "{}", m.graph);
            assert!(m.balance_factor >= 1.0 - 1e-9, "{}", m.graph);
            assert!(m.rounds > 0);
            match m.workload.as_str() {
                "flood" => {
                    let msgs = m
                        .cross_messages_per_round
                        .expect("flood rows carry traffic");
                    let bytes = m.cross_bytes_per_round.expect("flood rows carry traffic");
                    // Flooding sends one u64 over every edge in both
                    // directions while running, so the per-round average is
                    // bounded by twice the cut (the final halting round
                    // carries nothing).
                    let cut_cap = 2.0 * m.cut_fraction * m.m as f64;
                    assert!(msgs <= cut_cap + 1e-6, "{}: {msgs} > {cut_cap}", m.graph);
                    assert!(msgs > 0.0, "{}: no cross traffic measured", m.graph);
                    // Payload sizes are value-dependent (`Payload::encoded_bits`),
                    // but each message is at most one u64.
                    assert!(bytes > 0.0 && bytes <= msgs * 8.0 + 1e-6);
                    assert!(m.repaired_edges.is_none());
                }
                "churn-repair" => {
                    assert!(m.cross_messages_per_round.is_none());
                    assert!(m.cross_bytes_per_round.is_none());
                    assert!(m.repaired_edges.is_some());
                }
                other => panic!("unexpected workload {other}"),
            }
        }
    }

    #[test]
    fn dyn_experiment_repairs_far_less_than_full_recolor() {
        let table = run_dyn(false);
        assert_eq!(table.rows.len(), 3);
        // Steady-state scenarios (churn, sliding window) repair locally:
        // orders of magnitude fewer edges than recoloring per batch, and no
        // full-recolor fallback thanks to the provisioned headroom.
        for row in table.rows.iter().take(2) {
            let repaired: u64 = row[4].parse().unwrap();
            let full_recolors: u64 = row[5].parse().unwrap();
            let full_equivalent: u64 = row[6].parse().unwrap();
            let frac: f64 = row[7].parse().unwrap();
            assert!(
                repaired < full_equivalent / 10,
                "{}: repair touched {repaired} of {full_equivalent} edges",
                row[0]
            );
            assert!(frac < 0.1);
            assert_eq!(full_recolors, 0, "{}: fell back to a full recolor", row[0]);
        }
        // The hub attack runs with the tight budget and keeps breaking it:
        // the fallback accounting must show up.
        let hub = &table.rows[2];
        assert!(
            hub[5].parse::<u64>().unwrap() >= 1,
            "hub attack never broke the palette"
        );
    }

    #[test]
    fn fault_experiment_is_deterministic_and_validates() {
        let (table, measurements) = run_fault();
        // 2 graphs × 2 plans × 2 workloads.
        assert_eq!(measurements.len(), 8);
        assert_eq!(table.rows.len(), 8);
        let (again, repeat) = run_fault();
        assert_eq!(again.headers, table.headers);
        for (a, b) in measurements.iter().zip(&repeat) {
            // Everything except wall-clock replays exactly.
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.graph, b.graph);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.conflicts_found, b.conflicts_found);
            assert_eq!(a.repaired_edges, b.repaired_edges);
        }
        for m in &measurements {
            assert!(m.identical_across_policies, "{}: diverged", m.graph);
            match m.workload.as_str() {
                "flood" => {
                    assert!(m.dropped > 0, "{}: adversary idle", m.graph);
                    assert!(m.delivered > 0, "{}: everything lost", m.graph);
                    assert!(m.conflicts_found.is_none());
                    if m.crashes > 0 {
                        assert!(m.crash_dropped > 0, "{}: crashes idle", m.graph);
                    }
                    if m.link_cuts > 0 {
                        assert!(m.partition_dropped > 0, "{}: cuts idle", m.graph);
                    }
                }
                "recovery" => {
                    assert!(m.corrupted_edges.unwrap() > 0);
                    assert!(m.conflicts_found.unwrap() > 0, "{}: clean", m.graph);
                    assert!(m.repaired_edges.unwrap() > 0);
                }
                other => panic!("unexpected workload {other}"),
            }
        }
    }

    #[test]
    fn layered_game_builder_matches_expectations() {
        let game = layered_token_game(3, 4, 8);
        assert_eq!(game.n, 12);
        assert_eq!(game.num_arcs(), 2 * 16);
        assert_eq!(game.total_tokens(), 4 * 8);
    }
}
