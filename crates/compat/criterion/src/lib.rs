//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the `criterion 0.5` API the workspace's benches
//! use — [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`] and [`black_box`] — backed by a plain
//! wall-clock timing loop. It reports a mean time per iteration; it does no
//! statistics, outlier rejection or HTML reporting. Good enough to compare
//! orders of magnitude and to keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    mean_nanos: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up plus `iterations` timed runs)
    /// and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

fn human(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

fn run_one(group: &str, label: &str, iterations: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        mean_nanos: 0.0,
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!(
        "{:<60} {:>12}/iter ({} iters)",
        name,
        human(bencher.mean_nanos),
        iterations
    );
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.into().label, self.sample_size, f);
        self
    }

    /// Benches `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (All output is printed eagerly; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Benches `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.into().label, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn macros_compose() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
