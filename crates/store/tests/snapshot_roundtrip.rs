//! Round-trip properties of the binary snapshot format: everything that
//! goes in — graph structure, colorings, stable-id tables, permutations —
//! comes back bit-identical, whether served zero-copy or materialized.

use distgraph::{
    reorder_permutation, DynamicGraph, EdgeColoring, EdgeId, Graph, NodeId, ReorderStrategy,
    UpdateBatch,
};
use diststore::{LoadedSnapshot, Snapshot, SnapshotSource};
use proptest::prelude::*;

/// Random simple graph as used across the workspace's property suites.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(120)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

/// A graph plus a partial coloring of roughly half its edges.
fn arb_colored_graph() -> impl Strategy<Value = (Graph, EdgeColoring)> {
    (arb_graph(), 0usize..1000).prop_map(|(g, salt)| {
        let mut coloring = EdgeColoring::empty(g.m());
        for e in g.edges() {
            if (e.index() + salt) % 3 != 0 {
                coloring.set(e, (e.index() * 7 + salt) % 11);
            }
        }
        (g, coloring)
    })
}

/// Asserts the zero-copy view serves exactly the graph's structure.
fn assert_view_matches(snapshot: &Snapshot, g: &Graph) {
    let view = snapshot.view();
    assert_eq!(view.n(), g.n());
    assert_eq!(view.m(), g.m());
    assert_eq!(view.max_degree(), g.max_degree());
    for v in g.nodes() {
        assert_eq!(view.degree(v), g.degree(v));
        let from_view: Vec<_> = view.neighbors(v).collect();
        assert_eq!(from_view.as_slice(), g.neighbors(v));
    }
    for e in g.edges() {
        assert_eq!(view.endpoints(e), g.endpoints(e));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn graph_structure_roundtrips(g in arb_graph()) {
        let bytes = SnapshotSource::graph(&g).encode().expect("encodes");
        let snapshot = Snapshot::from_bytes(bytes).expect("opens");
        assert_view_matches(&snapshot, &g);
        let loaded = LoadedSnapshot::load(&snapshot).expect("materializes");
        prop_assert_eq!(loaded.graph(), &g);
        prop_assert!(loaded.coloring().is_none());
        prop_assert!(loaded.permutation().is_none());
        prop_assert!(!loaded.has_stable_ids());
    }

    #[test]
    fn colorings_roundtrip((g, coloring) in arb_colored_graph()) {
        let bytes = SnapshotSource::graph(&g)
            .with_coloring(&coloring)
            .encode()
            .expect("encodes");
        let snapshot = Snapshot::from_bytes(bytes).expect("opens");
        let view = snapshot.view();
        prop_assert!(view.has_coloring());
        for e in g.edges() {
            prop_assert_eq!(view.color(e), coloring.color(e));
        }
        let loaded = LoadedSnapshot::load(&snapshot).expect("materializes");
        prop_assert_eq!(loaded.coloring(), Some(&coloring));
    }

    #[test]
    fn permutations_roundtrip(g in arb_graph(), strategy_pick in 0usize..3) {
        let strategy = [ReorderStrategy::Degree, ReorderStrategy::Bfs, ReorderStrategy::Rcm]
            [strategy_pick];
        let perm = reorder_permutation(&g, strategy);
        let reordered = g.renumber_nodes(&perm);
        let bytes = SnapshotSource::graph(&reordered)
            .with_permutation(&perm)
            .encode()
            .expect("encodes");
        let snapshot = Snapshot::from_bytes(bytes).expect("opens");
        let view = snapshot.view();
        prop_assert!(view.has_permutation());
        for v in reordered.nodes() {
            prop_assert_eq!(view.original_id(v), Some(perm.old_id(v)));
        }
        let loaded = LoadedSnapshot::load(&snapshot).expect("materializes");
        prop_assert_eq!(loaded.permutation(), Some(&perm));
        prop_assert_eq!(loaded.graph(), &reordered);
    }

    #[test]
    fn dynamic_graphs_roundtrip_with_stable_ids(g in arb_graph(), delete_salt in 0usize..7) {
        // Build a dynamic graph, churn it (delete a stripe of edges, then
        // re-insert those pairs) so stable ids diverge from internal ids,
        // snapshot, and resume.
        let mut dynamic = DynamicGraph::from_graph(g.clone());
        let doomed: Vec<EdgeId> = g
            .edges()
            .filter(|e| e.index() % 5 == delete_salt % 5)
            .collect();
        if !doomed.is_empty() {
            let delete: Vec<EdgeId> = doomed.iter().map(|&e| dynamic.stable_id(e)).collect();
            let pairs: Vec<(usize, usize)> = doomed
                .iter()
                .map(|&e| {
                    let (u, v) = g.endpoints(e);
                    (u.index(), v.index())
                })
                .collect();
            dynamic
                .apply(&UpdateBatch { delete, insert: vec![] })
                .expect("deleting live edges succeeds");
            dynamic
                .apply(&UpdateBatch { delete: vec![], insert: pairs })
                .expect("re-inserting deleted pairs succeeds");
        }
        let bytes = SnapshotSource::dynamic(&dynamic).encode().expect("encodes");
        let snapshot = Snapshot::from_bytes(bytes).expect("opens");
        let view = snapshot.view();
        prop_assert!(view.has_stable_ids());
        prop_assert_eq!(view.next_stable_id(), dynamic.next_stable_id());
        for e in dynamic.graph().edges() {
            prop_assert_eq!(view.stable_id(e), Some(dynamic.stable_id(e)));
        }
        let resumed = LoadedSnapshot::load(&snapshot)
            .expect("materializes")
            .into_dynamic()
            .expect("stable table is consistent");
        prop_assert_eq!(resumed.graph(), dynamic.graph());
        prop_assert_eq!(resumed.stable_table(), dynamic.stable_table());
        prop_assert_eq!(resumed.next_stable_id(), dynamic.next_stable_id());
    }

    #[test]
    fn text_edge_lists_roundtrip(g in arb_graph()) {
        let mut text = format!("p {} {}\n", g.n(), g.m());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            text.push_str(&format!("{} {}\n", u.index(), v.index()));
        }
        let parsed = diststore::parse_edge_list(&text).expect("parses");
        prop_assert_eq!(parsed, g);
    }
}

#[test]
fn files_roundtrip_through_disk() {
    let g = distgraph::generators::grid_torus(12, 9);
    let coloring = {
        let mut c = EdgeColoring::empty(g.m());
        for e in g.edges() {
            c.set(e, e.index() % 5);
        }
        c
    };
    let path = std::env::temp_dir().join("diststore_disk_roundtrip.snap");
    SnapshotSource::graph(&g)
        .with_coloring(&coloring)
        .write_to(&path)
        .expect("writes");
    let snapshot = Snapshot::open(&path).expect("opens from disk");
    let loaded = LoadedSnapshot::load(&snapshot).expect("materializes");
    assert_eq!(loaded.graph(), &g);
    assert_eq!(loaded.coloring(), Some(&coloring));
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_without_stable_table_resumes_with_identity_ids() {
    let g = distgraph::generators::cycle(10);
    let snapshot = Snapshot::from_bytes(SnapshotSource::graph(&g).encode().unwrap()).unwrap();
    let dynamic = LoadedSnapshot::load(&snapshot)
        .unwrap()
        .into_dynamic()
        .unwrap();
    for e in g.edges() {
        assert_eq!(dynamic.stable_id(e), e);
    }
    assert_eq!(dynamic.next_stable_id(), g.m());
}

#[test]
fn empty_graph_roundtrips() {
    let g = Graph::from_edges(0, &[]).unwrap();
    let snapshot = Snapshot::from_bytes(SnapshotSource::graph(&g).encode().unwrap()).unwrap();
    assert_eq!(snapshot.view().n(), 0);
    assert_eq!(snapshot.view().m(), 0);
    let loaded = LoadedSnapshot::load(&snapshot).unwrap();
    assert_eq!(loaded.graph().n(), 0);
}

#[test]
fn view_serves_neighbors_in_graph_order() {
    let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
    let snapshot = Snapshot::from_bytes(SnapshotSource::graph(&g).encode().unwrap()).unwrap();
    let order: Vec<usize> = snapshot
        .view()
        .neighbors(NodeId::new(2))
        .map(|nb| nb.node.index())
        .collect();
    assert_eq!(order, vec![0, 1, 3, 4]);
}
