//! Data-center link scheduling via edge coloring.
//!
//! In a leaf–spine fabric, the links between leaf and spine switches form a
//! bipartite graph. A proper edge coloring is exactly a partition of the
//! links into conflict-free transmission slots (no switch drives two links in
//! the same slot). The paper's bipartite (2+ε)Δ algorithm (Lemma 6.1)
//! computes such a schedule in a number of rounds polylogarithmic in the port
//! count, which is what matters when the fabric is large but the radix is
//! moderate.
//!
//! Run with `cargo run --release --example switch_scheduling`.

use distgraph::generators;
use distsim::{Model, Network};
use edgecolor::bipartite_coloring::color_bipartite;
use edgecolor::ColoringParams;
use edgecolor_verify::{check_complete, check_proper_edge_coloring};

fn main() {
    // 64 leaf switches, 64 spine switches, each leaf connected to 24 spines.
    let fabric = generators::regular_bipartite(64, 24, 2024).expect("feasible fabric");
    let graph = fabric.graph();
    println!(
        "fabric: {} switches, {} links, radix Δ = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    let params = ColoringParams::new(0.5);
    let mut net = Network::new(graph, Model::Local);
    let schedule = color_bipartite(&fabric, &params, &mut net);

    check_proper_edge_coloring(graph, &schedule.coloring).assert_ok();
    check_complete(graph, &schedule.coloring).assert_ok();

    println!(
        "schedule: {} transmission slots (budget (2+ε)Δ = {}), computed in {} distributed rounds ({} splitting levels, {} leaf subgraphs)",
        schedule.colors_used,
        ((2.0 + params.eps) * graph.max_degree() as f64) as usize,
        net.rounds(),
        schedule.levels,
        schedule.leaves,
    );

    // Show the slot utilisation histogram: how many links fire in each slot.
    let mut slot_sizes = vec![0usize; schedule.colors_used];
    for e in graph.edges() {
        if let Some(c) = schedule.coloring.color(e) {
            slot_sizes[c] += 1;
        }
    }
    let busiest = slot_sizes.iter().max().copied().unwrap_or(0);
    let emptiest = slot_sizes.iter().min().copied().unwrap_or(0);
    println!(
        "slot occupancy: min {emptiest}, max {busiest}, ideal {}",
        graph.m() / schedule.colors_used.max(1)
    );
}
