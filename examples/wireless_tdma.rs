//! TDMA slot assignment with per-link forbidden slots, solved as
//! (degree+1)-list edge coloring (Theorem 1.1).
//!
//! Radio links that share an endpoint cannot use the same time slot, and each
//! link additionally has its own set of usable slots (regulatory or
//! interference constraints remove some slots per link). As long as every
//! link has at least `deg(e) + 1` usable slots, the paper's LOCAL list edge
//! coloring algorithm finds a feasible assignment.
//!
//! Run with `cargo run --release --example wireless_tdma`.

use distgraph::{generators, ListAssignment};
use distsim::IdAssignment;
use edgecolor::{list_edge_coloring, ColoringParams};
use edgecolor_verify::{check_complete, check_list_compliance, check_proper_edge_coloring};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A mesh of 300 radios with around 8 links each.
    let graph = generators::random_regular(300, 8, 11).expect("feasible parameters");
    let slots_total = 4 * graph.max_degree(); // the global slot space
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    // Each link may use a random subset of slots of size deg(e) + 1 + margin.
    let all_slots: Vec<usize> = (0..slots_total).collect();
    let lists = ListAssignment::new(
        slots_total,
        graph
            .edges()
            .map(|e| {
                let need = graph.edge_degree(e) + 1 + 2;
                let mut slots = all_slots.clone();
                slots.shuffle(&mut rng);
                slots.truncate(need);
                slots
            })
            .collect(),
    );

    let ids = IdAssignment::scattered(graph.n(), 5);
    let params = ColoringParams::new(0.5);
    let outcome =
        list_edge_coloring(&graph, &lists, &ids, &params).expect("lists satisfy degree+1");

    check_proper_edge_coloring(&graph, &outcome.coloring).assert_ok();
    check_complete(&graph, &outcome.coloring).assert_ok();
    check_list_compliance(&graph, &lists, &outcome.coloring).assert_ok();

    println!(
        "assigned {} links to {} distinct slots out of a space of {} (all per-link restrictions respected)",
        graph.m(),
        outcome.colors_used,
        slots_total
    );
    println!(
        "distributed cost: {} rounds total, {} for the initial O(Δ²) coloring, {} Lemma D.2 solver calls, {} fallback rounds, {} outer iterations",
        outcome.metrics.rounds,
        outcome.initial_coloring_rounds,
        outcome.solver_calls,
        outcome.fallback_rounds,
        outcome.outer_iterations
    );
}
