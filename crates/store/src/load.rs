//! Materializing snapshots into workspace types and wiring them into the
//! round simulator.
//!
//! [`LoadedSnapshot::load`] turns an opened [`Snapshot`] into owned
//! [`distgraph`] values via [`Graph::from_csr_parts`] — the fast decode path
//! that skips the hashing and per-node sorting of `Graph::from_edges` — and
//! [`LoadedSnapshot::network`] hands the graph to [`distsim::Network`] so a
//! snapshot goes from file to first runnable round in one call chain.

use crate::error::SnapshotError;
use crate::view::Snapshot;
use distgraph::{DynamicGraph, EdgeColoring, EdgeId, Graph, Neighbor, NodeId, NodePermutation};
use distsim::{ExecutionPolicy, Model, Network};
use std::path::Path;

/// Decodes the snapshot's structure sections into an owned [`Graph`].
///
/// Streams the raw section arrays into vectors and hands them to
/// [`Graph::from_csr_parts_trusted`]: [`Snapshot::open`] already proved
/// every invariant `Graph::from_csr_parts` would check on the file bytes
/// themselves, so materialization is a plain `O(n + m)` copy with no second
/// validation walk — this is most of the gap between the `binary_decode`
/// and `zero_copy_open` rows of the IO benchmark.
///
/// # Errors
///
/// None today (the signature keeps `Result` so decode-time validation can
/// return if the format ever grows sections the open path cannot fully
/// prove).
pub fn load_graph(snapshot: &Snapshot) -> Result<Graph, SnapshotError> {
    let view = snapshot.view();
    let offsets: Vec<usize> = view.csr_offsets().iter().map(|o| o as usize).collect();
    let (adjn, adje) = view.adj_arrays();
    let adj: Vec<Neighbor> = adjn
        .iter()
        .zip(adje.iter())
        .map(|(node, edge)| Neighbor {
            node: NodeId(node),
            edge: EdgeId(edge),
        })
        .collect();
    let endpoints: Vec<(NodeId, NodeId)> = view
        .endpoint_array()
        .iter_pairs()
        .map(|(u, v)| (NodeId(u), NodeId(v)))
        .collect();
    Ok(Graph::from_csr_parts_trusted(offsets, adj, endpoints))
}

/// A fully materialized snapshot: the graph plus whatever optional payloads
/// the file carried, ready to drive algorithms and the simulator.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    graph: Graph,
    coloring: Option<EdgeColoring>,
    stable: Option<(Vec<EdgeId>, usize)>,
    permutation: Option<NodePermutation>,
}

impl LoadedSnapshot {
    /// Materializes every section of an opened snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Graph`] if any decoded structure fails the graph
    /// crate's validation.
    pub fn load(snapshot: &Snapshot) -> Result<Self, SnapshotError> {
        let view = snapshot.view();
        let graph = load_graph(snapshot)?;
        let coloring = view.has_coloring().then(|| {
            EdgeColoring::from_vec((0..graph.m()).map(|e| view.color(EdgeId::new(e))).collect())
        });
        let stable = view.has_stable_ids().then(|| {
            let table: Vec<EdgeId> = (0..graph.m())
                .map(|e| view.stable_id(EdgeId::new(e)).expect("table present"))
                .collect();
            (table, view.next_stable_id())
        });
        let permutation = match view.has_permutation() {
            true => Some(NodePermutation::from_old_of_new(
                (0..graph.n())
                    .map(|v| {
                        view.original_id(NodeId::new(v))
                            .expect("permutation present")
                            .0
                    })
                    .collect(),
            )?),
            false => None,
        };
        Ok(LoadedSnapshot {
            graph,
            coloring,
            stable,
            permutation,
        })
    }

    /// Opens, validates and materializes the snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from opening or materialization.
    pub fn load_path(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::load(&Snapshot::open(path)?)
    }

    /// The materialized graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The stored edge coloring, if the snapshot carried one.
    pub fn coloring(&self) -> Option<&EdgeColoring> {
        self.coloring.as_ref()
    }

    /// The stored node permutation, if the snapshot carried one.
    pub fn permutation(&self) -> Option<&NodePermutation> {
        self.permutation.as_ref()
    }

    /// Returns `true` if the snapshot carried a stable-id table.
    pub fn has_stable_ids(&self) -> bool {
        self.stable.is_some()
    }

    /// Rebuilds the [`DynamicGraph`] this snapshot was taken from,
    /// consuming the loaded state. Snapshots without a stable-id table
    /// resume with the identity table (stable id = current id), exactly
    /// what `DynamicGraph::new` would assign.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Graph`] if the stable table is inconsistent
    /// (repeated ids — open-time checks already bounded them).
    pub fn into_dynamic(self) -> Result<DynamicGraph, SnapshotError> {
        match self.stable {
            Some((table, next)) => Ok(DynamicGraph::from_saved(self.graph, table, next)?),
            None => {
                let m = self.graph.m();
                let table: Vec<EdgeId> = (0..m).map(EdgeId::new).collect();
                Ok(DynamicGraph::from_saved(self.graph, table, m)?)
            }
        }
    }

    /// A simulator network over the loaded graph — the "first runnable
    /// round" endpoint of the cold-start path measured by the IO benchmark.
    pub fn network(&self, model: Model, policy: ExecutionPolicy) -> Network<'_> {
        Network::with_policy(&self.graph, model, policy)
    }
}
