//! Error type for graph construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint refers to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes of the graph.
        n: usize,
    },
    /// A self loop `{v, v}` was supplied; the algorithms in this crate work on
    /// simple graphs.
    SelfLoop {
        /// The node with a self loop.
        node: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A graph was expected to be bipartite but contains an odd cycle.
    NotBipartite,
    /// A declared bipartition has an edge with both endpoints on the same side.
    InvalidBipartition {
        /// One endpoint of the violating edge.
        u: usize,
        /// The other endpoint of the violating edge.
        v: usize,
    },
    /// A generator was asked for a graph that cannot exist
    /// (for example a d-regular graph with `n * d` odd).
    InfeasibleParameters {
        /// Human-readable description of the infeasibility.
        reason: String,
    },
    /// A dynamic-graph operation referenced a stable edge id that is not
    /// alive (never assigned, already deleted, or deleted earlier in the same
    /// batch).
    UnknownEdge {
        /// The stable edge id.
        id: usize,
    },
    /// An index (node count, edge count, or a single identifier) does not fit
    /// the `u32` identifier space. Surfaced as a typed error — instead of an
    /// `expect` panic — so ingestion paths can reject corrupt or oversized
    /// headers gracefully.
    IndexOverflow {
        /// What kind of index overflowed (e.g. `"node index"`).
        what: &'static str,
        /// The offending value.
        index: u64,
    },
    /// Raw CSR parts handed to [`Graph::from_csr_parts`](crate::Graph::from_csr_parts)
    /// violate a structural invariant (non-monotone offsets, unsorted
    /// adjacency, endpoint/adjacency disagreement, ...). This is the error a
    /// corrupted-but-checksum-forged snapshot materializes as.
    InvalidCsr {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "node index {node} is out of range for a graph with {n} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self loop at node {node} is not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between nodes {u} and {v}")
            }
            GraphError::NotBipartite => write!(f, "graph is not bipartite"),
            GraphError::InvalidBipartition { u, v } => {
                write!(
                    f,
                    "edge between {u} and {v} has both endpoints on the same side"
                )
            }
            GraphError::InfeasibleParameters { reason } => {
                write!(f, "infeasible generator parameters: {reason}")
            }
            GraphError::UnknownEdge { id } => {
                write!(f, "stable edge id e{id} does not name a live edge")
            }
            GraphError::IndexOverflow { what, index } => {
                write!(f, "{what} {index} exceeds the u32 identifier space")
            }
            GraphError::InvalidCsr { detail } => {
                write!(f, "invalid CSR structure: {detail}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate edge"));
        let e = GraphError::NotBipartite;
        assert!(e.to_string().contains("bipartite"));
        let e = GraphError::InvalidBipartition { u: 0, v: 1 };
        assert!(e.to_string().contains("same side"));
        let e = GraphError::InfeasibleParameters {
            reason: "n*d is odd".into(),
        };
        assert!(e.to_string().contains("infeasible"));
        let e = GraphError::UnknownEdge { id: 12 };
        assert!(e.to_string().contains("e12"));
        let e = GraphError::IndexOverflow {
            what: "node index",
            index: 1 << 40,
        };
        assert!(e.to_string().contains("u32"));
        let e = GraphError::InvalidCsr {
            detail: "offsets not monotone".into(),
        };
        assert!(e.to_string().contains("CSR"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<GraphError>();
    }
}
