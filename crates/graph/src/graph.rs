//! The core undirected simple graph type used by every other crate.
//!
//! The representation is a compressed adjacency list (CSR): for each node a
//! contiguous slice of [`Neighbor`] entries, each carrying the neighbor's
//! [`NodeId`] and the [`EdgeId`] of the connecting edge. Edge endpoints are
//! stored separately so that edge-centric algorithms (everything in the
//! reproduced paper operates on the line graph) can go from an edge to its
//! endpoints in O(1).

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One adjacency entry: the neighboring node and the edge connecting to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighboring node.
    pub node: NodeId,
    /// The undirected edge connecting to that node.
    pub edge: EdgeId,
}

/// An undirected simple graph with dense node and edge identifiers.
///
/// # Examples
///
/// ```
/// use distgraph::Graph;
///
/// // A path on four nodes: 0 - 1 - 2 - 3
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.max_degree(), 2);
/// // The middle edge is adjacent to two other edges in the line graph.
/// let e = g.edge_between(1.into(), 2.into()).unwrap();
/// assert_eq!(g.edge_degree(e), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists, length `2 m`, sorted by neighbor id
    /// within each node's slice.
    adj: Vec<Neighbor>,
    /// Endpoints of every edge; the pair is stored with the smaller node first.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph with `n` nodes from a list of undirected edges.
    ///
    /// Edge identifiers are assigned in the order the edges appear in
    /// `edges`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a self
    /// loop, the same edge appears twice, or the node/edge counts exceed the
    /// `u32` identifier space ([`GraphError::IndexOverflow`] — checked up
    /// front, before any allocation is sized from the counts).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        // Guard the identifier space before sizing any allocation from the
        // counts: a corrupt header asking for u32::MAX + 2 nodes must
        // surface as a typed error, not as an `expect` panic (or a huge
        // allocation) deep inside CSR construction.
        if n > u32::MAX as usize + 1 {
            return Err(GraphError::IndexOverflow {
                what: "node count",
                index: n as u64,
            });
        }
        if edges.len() > u32::MAX as usize + 1 {
            return Err(GraphError::IndexOverflow {
                what: "edge count",
                index: edges.len() as u64,
            });
        }
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges.len());
        let mut endpoints = Vec::with_capacity(edges.len());
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { u, v });
            }
            degree[u] += 1;
            degree[v] += 1;
            endpoints.push((NodeId::new(key.0), NodeId::new(key.1)));
        }

        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![
            Neighbor {
                node: NodeId::new(0),
                edge: EdgeId::new(0)
            };
            offsets[n]
        ];
        for (idx, &(a, b)) in endpoints.iter().enumerate() {
            let e = EdgeId::new(idx);
            adj[cursor[a.index()]] = Neighbor { node: b, edge: e };
            cursor[a.index()] += 1;
            adj[cursor[b.index()]] = Neighbor { node: a, edge: e };
            cursor[b.index()] += 1;
        }
        // Sort each node's adjacency slice by neighbor id for deterministic
        // iteration order and O(log deg) edge lookup.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_by_key(|nb| nb.node);
        }
        Ok(Graph {
            offsets,
            adj,
            endpoints,
        })
    }

    /// Builds a graph from edges given as `NodeId` pairs.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Graph::from_edges`].
    pub fn from_node_id_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let raw: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (u.index(), v.index())).collect();
        Self::from_edges(n, &raw)
    }

    /// Rebuilds a graph directly from already-materialized CSR parts — the
    /// fast path for binary snapshot decoding, which skips the hashing and
    /// per-node sorting of [`Graph::from_edges`] but still validates every
    /// structural invariant the rest of the workspace relies on.
    ///
    /// Expected shape (exactly what [`Graph::from_edges`] produces):
    /// `offsets` has length `n + 1`, starts at 0, is monotone and ends at
    /// `adj.len() == 2 * endpoints.len()`; each node's adjacency slice is
    /// strictly sorted by neighbor id; every endpoint pair is stored smaller
    /// node first; and each adjacency entry `(w, e)` at node `v` agrees with
    /// `endpoints[e] == (min(v, w), max(v, w))`, with every edge appearing
    /// exactly twice.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] describing the first violated
    /// invariant, or [`GraphError::IndexOverflow`] if the counts exceed the
    /// `u32` identifier space. The input is validated in `O(n + m)` without
    /// panicking, so corrupt snapshot payloads surface as typed errors.
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        adj: Vec<Neighbor>,
        endpoints: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let invalid = |detail: String| GraphError::InvalidCsr { detail };
        if offsets.is_empty() {
            return Err(invalid("offsets array is empty".to_string()));
        }
        let n = offsets.len() - 1;
        let m = endpoints.len();
        if n > u32::MAX as usize + 1 {
            return Err(GraphError::IndexOverflow {
                what: "node count",
                index: n as u64,
            });
        }
        if m > u32::MAX as usize + 1 {
            return Err(GraphError::IndexOverflow {
                what: "edge count",
                index: m as u64,
            });
        }
        if offsets[0] != 0 {
            return Err(invalid(format!("offsets[0] is {}, expected 0", offsets[0])));
        }
        if adj.len() != 2 * m {
            return Err(invalid(format!(
                "adjacency has {} entries, expected 2m = {}",
                adj.len(),
                2 * m
            )));
        }
        if offsets[n] != adj.len() {
            return Err(invalid(format!(
                "offsets end at {}, expected adjacency length {}",
                offsets[n],
                adj.len()
            )));
        }
        for (u, v) in &endpoints {
            if u.index() >= n || v.index() >= n {
                return Err(invalid(format!("endpoint pair ({u}, {v}) out of range")));
            }
            if u >= v {
                return Err(invalid(format!(
                    "endpoint pair ({u}, {v}) not stored smaller-first (or self loop)"
                )));
            }
        }
        // Each edge must appear exactly twice in the adjacency, once per
        // endpoint; `seen` counts appearances without hashing.
        let mut seen = vec![0u8; m];
        for v in 0..n {
            let (start, end) = (offsets[v], offsets[v + 1]);
            if start > end {
                return Err(invalid(format!("offsets not monotone at node {v}")));
            }
            let slice = &adj[start..end];
            for (i, nb) in slice.iter().enumerate() {
                if i > 0 && slice[i - 1].node >= nb.node {
                    return Err(invalid(format!(
                        "adjacency of node {v} not strictly sorted by neighbor id"
                    )));
                }
                let e = nb.edge.index();
                if e >= m {
                    return Err(invalid(format!("adjacency edge {} out of range", nb.edge)));
                }
                let (a, b) = endpoints[e];
                let (lo, hi) = if v < nb.node.index() {
                    (NodeId::new(v), nb.node)
                } else {
                    (nb.node, NodeId::new(v))
                };
                if (a, b) != (lo, hi) {
                    return Err(invalid(format!(
                        "adjacency entry ({}, {}) at node {v} disagrees with endpoints[{e}] = ({a}, {b})",
                        nb.node, nb.edge
                    )));
                }
                if seen[e] >= 2 {
                    return Err(invalid(format!("edge {} appears more than twice", nb.edge)));
                }
                seen[e] += 1;
            }
        }
        // Counts line up: adjacency length is 2m and no edge exceeded two
        // appearances, so every edge appeared exactly twice.
        Ok(Graph {
            offsets,
            adj,
            endpoints,
        })
    }

    /// Builds a graph from CSR parts the caller has *already validated* to
    /// satisfy every invariant [`Graph::from_csr_parts`] checks, skipping
    /// the second `O(n + m)` walk. The binary snapshot decoder uses this:
    /// open-time validation proves the same invariants on the raw file
    /// bytes, so materialization becomes a plain copy.
    ///
    /// This is a safe function — handing it inconsistent parts can only
    /// produce a structurally inconsistent `Graph` (wrong answers or
    /// panics from *later* accessor calls), never memory unsafety. Debug
    /// builds re-run the full validation and panic on a violation, so test
    /// suites catch any caller that breaks the contract.
    pub fn from_csr_parts_trusted(
        offsets: Vec<usize>,
        adj: Vec<Neighbor>,
        endpoints: Vec<(NodeId, NodeId)>,
    ) -> Self {
        #[cfg(debug_assertions)]
        if let Err(e) = Self::from_csr_parts(offsets.clone(), adj.clone(), endpoints.clone()) {
            panic!("from_csr_parts_trusted called with invalid CSR parts: {e}");
        }
        Graph {
            offsets,
            adj,
            endpoints,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::new)
    }

    /// Iterator over all edge identifiers `0..m`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.m()).map(EdgeId::new)
    }

    /// The CSR adjacency offsets (length `n + 1`): node `v`'s neighbor
    /// slice is indexed by `offsets[v]..offsets[v + 1]`, so `offsets` is
    /// also the prefix sum of the degree sequence. Exposed for
    /// degree-weighted work partitioning.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The adjacency list of node `v` (sorted by neighbor id).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Iterator over the edges incident to `v`.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.neighbors(v).iter().map(|nb| nb.edge)
    }

    /// The two endpoints of edge `e` (smaller node id first).
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` different from `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("{v} is not an endpoint of {e}");
        }
    }

    /// Returns `true` if `v` is an endpoint of `e`.
    #[inline]
    pub fn is_endpoint(&self, e: EdgeId, v: NodeId) -> bool {
        let (a, b) = self.endpoints(e);
        a == v || b == v
    }

    /// The degree of edge `e` in the line graph of the graph,
    /// i.e. `deg(u) + deg(v) - 2` for `e = {u, v}` (Section 2 of the paper).
    #[inline]
    pub fn edge_degree(&self, e: EdgeId) -> usize {
        let (u, v) = self.endpoints(e);
        self.degree(u) + self.degree(v) - 2
    }

    /// Maximum node degree Δ (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum edge degree Δ̄ over all edges (0 for an edgeless graph).
    ///
    /// The paper writes Δ̄ for this quantity and uses the bound Δ̄ ≤ 2Δ − 2.
    pub fn max_edge_degree(&self) -> usize {
        (0..self.m())
            .map(|e| self.edge_degree(EdgeId::new(e)))
            .max()
            .unwrap_or(0)
    }

    /// Looks up the edge between `u` and `v`, if it exists.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let slice = self.neighbors(probe);
        slice
            .binary_search_by_key(&target, |nb| nb.node)
            .ok()
            .map(|i| slice[i].edge)
    }

    /// Returns `true` if an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// All edges adjacent to `e` in the line graph (sharing an endpoint),
    /// excluding `e` itself.
    pub fn adjacent_edges(&self, e: EdgeId) -> Vec<EdgeId> {
        let (u, v) = self.endpoints(e);
        let mut out = Vec::with_capacity(self.edge_degree(e));
        for nb in self.neighbors(u).iter().chain(self.neighbors(v)) {
            if nb.edge != e {
                out.push(nb.edge);
            }
        }
        out
    }

    /// All edges as `(EdgeId, u, v)` triples.
    pub fn edge_list(&self) -> Vec<(EdgeId, NodeId, NodeId)> {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
            .collect()
    }

    /// Attempts to 2-color the nodes by BFS; returns the side of every node or
    /// `None` if the graph contains an odd cycle.
    ///
    /// Isolated components are colored starting from their smallest node id on
    /// side `U`, which makes the result deterministic.
    pub fn bipartition(&self) -> Option<Vec<crate::ids::Side>> {
        use crate::ids::Side;
        let n = self.n();
        let mut side: Vec<Option<Side>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if side[start].is_some() {
                continue;
            }
            side[start] = Some(Side::U);
            queue.push_back(NodeId::new(start));
            while let Some(v) = queue.pop_front() {
                let sv = side[v.index()].expect("queued nodes have a side");
                for nb in self.neighbors(v) {
                    match side[nb.node.index()] {
                        None => {
                            side[nb.node.index()] = Some(sv.opposite());
                            queue.push_back(nb.node);
                        }
                        Some(s) if s == sv => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        Some(
            side.into_iter()
                .map(|s| s.expect("all nodes visited"))
                .collect(),
        )
    }

    /// Number of connected components.
    pub fn connected_components(&self) -> usize {
        let n = self.n();
        let mut visited = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            components += 1;
            visited[start] = true;
            stack.push(NodeId::new(start));
            while let Some(v) = stack.pop() {
                for nb in self.neighbors(v) {
                    if !visited[nb.node.index()] {
                        visited[nb.node.index()] = true;
                        stack.push(nb.node);
                    }
                }
            }
        }
        components
    }

    /// Builds the subgraph induced by keeping only the edges for which `keep`
    /// returns `true`. The node set is unchanged; a mapping from new edge ids
    /// to original edge ids is returned alongside the subgraph.
    pub fn edge_subgraph(&self, keep: impl Fn(EdgeId) -> bool) -> (Graph, Vec<EdgeId>) {
        let mut kept_edges = Vec::new();
        let mut raw = Vec::new();
        for e in self.edges() {
            if keep(e) {
                let (u, v) = self.endpoints(e);
                raw.push((u.index(), v.index()));
                kept_edges.push(e);
            }
        }
        let sub = Graph::from_edges(self.n(), &raw).expect("subgraph of a valid graph is valid");
        (sub, kept_edges)
    }

    /// Sum of all node degrees; equals `2 m` (handshake lemma).
    pub fn degree_sum(&self) -> usize {
        (0..self.n()).map(|v| self.degree(NodeId::new(v))).sum()
    }

    /// Builds the line graph: one node per edge of `self`, with two line-graph
    /// nodes adjacent whenever the corresponding edges share an endpoint.
    ///
    /// The line-graph node with index `i` corresponds to the edge `EdgeId(i)`
    /// of the original graph, and the maximum degree of the line graph is the
    /// maximum edge degree Δ̄ of `self`.
    pub fn line_graph(&self) -> Graph {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for v in self.nodes() {
            let incident = self.neighbors(v);
            for i in 0..incident.len() {
                for j in (i + 1)..incident.len() {
                    let a = incident[i].edge.index();
                    let b = incident[j].edge.index();
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph::from_edges(self.m(), &edges).expect("line graph edges are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Side;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_edge_degree(), 0);
        assert_eq!(g.connected_components(), 0);
    }

    #[test]
    fn single_edge() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.edge_degree(EdgeId::new(0)), 0);
        assert_eq!(
            g.endpoints(EdgeId::new(0)),
            (NodeId::new(0), NodeId::new(1))
        );
        assert_eq!(
            g.other_endpoint(EdgeId::new(0), NodeId::new(0)),
            NodeId::new(1)
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_order() {
        assert!(Graph::from_edges(3, &[(0, 1), (1, 0)]).is_err());
        assert!(Graph::from_edges(3, &[(0, 1), (0, 1)]).is_err());
    }

    #[test]
    fn path_degrees_and_edge_degrees() {
        let g = path(5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 2);
        // middle edge (1,2): deg 1 side has degree 2, other side degree 2 => 2+2-2=2
        let e = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        assert_eq!(g.edge_degree(e), 2);
        let first = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(g.edge_degree(first), 1);
        assert_eq!(g.max_edge_degree(), 2);
    }

    #[test]
    fn triangle_line_graph_degrees() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        for e in g.edges() {
            assert_eq!(g.edge_degree(e), 2);
            assert_eq!(g.adjacent_edges(e).len(), 2);
        }
        assert_eq!(g.max_edge_degree(), 2);
    }

    #[test]
    fn handshake_lemma() {
        let g = path(10);
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let order: Vec<usize> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|nb| nb.node.index())
            .collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn edge_between_and_has_edge() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(
            g.edge_between(NodeId::new(2), NodeId::new(3)),
            Some(EdgeId::new(1))
        );
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sides = g.bipartition().unwrap();
        assert_eq!(sides[0], Side::U);
        assert_eq!(sides[1], Side::V);
        assert_eq!(sides[2], Side::U);
        assert_eq!(sides[3], Side::V);
    }

    #[test]
    fn bipartition_rejects_odd_cycle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(g.bipartition().is_none());
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(g.connected_components(), 3); // {0,1,2}, {3,4}, {5}
    }

    #[test]
    fn edge_subgraph_keeps_mapping() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (sub, map) = g.edge_subgraph(|e| e.index() != 1);
        assert_eq!(sub.m(), 2);
        assert_eq!(map, vec![EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(sub.n(), 4);
        assert!(sub.has_edge(NodeId::new(2), NodeId::new(3)));
        assert!(!sub.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn adjacent_edges_star() {
        // star with center 0 and leaves 1..=4
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let e0 = EdgeId::new(0);
        let adj = g.adjacent_edges(e0);
        assert_eq!(adj.len(), 3);
        assert!(!adj.contains(&e0));
        assert_eq!(g.edge_degree(e0), 3);
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        g.other_endpoint(EdgeId::new(0), NodeId::new(2));
    }

    #[test]
    fn line_graph_of_path_is_a_path() {
        let g = path(5); // 4 edges in a row
        let lg = g.line_graph();
        assert_eq!(lg.n(), 4);
        assert_eq!(lg.m(), 3);
        assert_eq!(lg.max_degree(), 2);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let lg = g.line_graph();
        assert_eq!(lg.n(), 4);
        assert_eq!(lg.m(), 6); // K4
        assert_eq!(lg.max_degree(), g.max_edge_degree());
    }

    #[test]
    fn line_graph_degree_matches_edge_degree() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
            .unwrap();
        let lg = g.line_graph();
        for e in g.edges() {
            assert_eq!(lg.degree(NodeId::new(e.index())), g.edge_degree(e));
        }
    }

    #[test]
    fn from_edges_rejects_oversized_counts_without_allocating() {
        // Regression: a corrupt snapshot header used to reach the
        // `NodeId::new` expect-panic (after attempting a count-sized
        // allocation); now both counts fail fast with a typed error.
        let n = u32::MAX as usize + 2;
        assert_eq!(
            Graph::from_edges(n, &[]),
            Err(GraphError::IndexOverflow {
                what: "node count",
                index: n as u64,
            })
        );
    }

    #[test]
    fn from_csr_parts_roundtrips_from_edges_output() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let rebuilt =
            Graph::from_csr_parts(g.offsets.clone(), g.adj.clone(), g.endpoints.clone()).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn from_csr_parts_rejects_structural_corruption() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let corrupt = |detail: &str, r: Result<Graph, GraphError>| match r {
            Err(GraphError::InvalidCsr { .. }) => {}
            other => panic!("{detail}: expected InvalidCsr, got {other:?}"),
        };

        // Non-monotone offsets.
        let mut offsets = g.offsets.clone();
        offsets[2] = 6;
        corrupt(
            "offsets",
            Graph::from_csr_parts(offsets, g.adj.clone(), g.endpoints.clone()),
        );

        // Adjacency slice out of sorted order.
        let mut adj = g.adj.clone();
        adj.swap(1, 2); // node 1's two neighbors, reversed
        corrupt(
            "sorting",
            Graph::from_csr_parts(g.offsets.clone(), adj, g.endpoints.clone()),
        );

        // Endpoint pair stored larger-first.
        let mut endpoints = g.endpoints.clone();
        endpoints[0] = (endpoints[0].1, endpoints[0].0);
        corrupt(
            "endpoints",
            Graph::from_csr_parts(g.offsets.clone(), g.adj.clone(), endpoints),
        );

        // Adjacency edge id pointing at the wrong endpoint pair.
        let mut adj = g.adj.clone();
        adj[0].edge = EdgeId::new(2);
        corrupt(
            "edge ids",
            Graph::from_csr_parts(g.offsets.clone(), adj, g.endpoints.clone()),
        );

        // Truncated endpoints table.
        let endpoints = g.endpoints[..2].to_vec();
        corrupt(
            "truncation",
            Graph::from_csr_parts(g.offsets.clone(), g.adj.clone(), endpoints),
        );
    }

    #[test]
    fn from_node_id_edges_equivalent() {
        let a = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let b = Graph::from_node_id_edges(
            3,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
            ],
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
