//! Edge-coloring as a service: a long-lived daemon over live snapshots.
//!
//! This crate is the front door of the reproduction's serving story. It
//! owns a loaded snapshot ([`diststore`]) materialized into a
//! [`distgraph::DynamicGraph`], maintains a live
//! [`edgecolor::Recoloring`] session wrapped in
//! [`edgecolor::SelfStabilizing`], and speaks a hand-rolled,
//! length-prefixed TCP protocol over `std::net` — no async runtime, no
//! network dependencies, offline-friendly.
//!
//! The pipeline is **request → admit → coalesce → repair → respond**:
//!
//! * **Lookups** (color by stable [`distgraph::EdgeId`]) are answered off an
//!   epoch-pinned immutable state — readers never block writers and never
//!   observe torn state ([`state`] module docs).
//! * **Submissions** pass bounded-queue admission control with typed
//!   rejects ([`wire::RejectCode`]); each tick coalesces every admitted
//!   batch into *one* [`distgraph::UpdateBatch`] and one local repair —
//!   the paper's Theorem 1.1 machinery recoloring only the dirty subgraph,
//!   which is what makes low-latency online serving plausible at all.
//! * **Hot swap** replaces the served snapshot under an epoch bump;
//!   in-flight reads finish on the old epoch, and a corrupt snapshot is
//!   rejected with the old one still serving.
//! * **Introspection** (metrics, palette, shard cut) and a deterministic
//!   [`loadgen`] close the loop for the bench layer's `SERVE` experiment.
//!
//! See `docs/SERVE.md` for the frame format, admission semantics and the
//! hot-swap epoch contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod error;
pub mod loadgen;
pub mod state;
pub mod wire;

pub use client::Client;
pub use daemon::DaemonHandle;
pub use error::{ProtocolError, SetupError, WireError};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use state::{EpochState, ServeConfig, ServerCore};
pub use wire::{LookupOutcome, MetricsReport, RejectCode, Request, Response, MAX_FRAME_LEN};
