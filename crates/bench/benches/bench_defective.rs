//! Wall-clock cost of the generalized defective 2-edge coloring (experiment E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;
use distsim::{Model, Network};
use edgecolor::defective_edge::{defective_two_edge_coloring, uniform_lambda};
use edgecolor::{OrientationParams, ParamProfile};

fn bench_defective(c: &mut Criterion) {
    let mut group = c.benchmark_group("defective_two_edge_coloring");
    group.sample_size(10);
    for &delta in &[8usize, 16, 32] {
        let bg = generators::regular_bipartite(2 * delta, delta, 5).unwrap();
        let lambda = uniform_lambda(bg.graph().m());
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, _| {
            b.iter(|| {
                let mut net = Network::new(bg.graph(), Model::Local);
                defective_two_edge_coloring(&bg, &lambda, &params, &mut net)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defective);
criterion_main!(benches);
