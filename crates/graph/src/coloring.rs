//! Vertex and edge colorings, together with properness and defect measures.
//!
//! The paper works with several coloring notions:
//!
//! * proper vertex colorings (used as distributed symmetry-breaking input,
//!   e.g. the `O(Δ²)`-coloring computed à la Linial),
//! * *d-defective c-colorings* of the nodes: each color class induces a graph
//!   of maximum degree at most `d` (Section 2),
//! * proper edge colorings, possibly partial (the recursions color some edges
//!   now and the rest later),
//! * defective *edge* colorings: a defective coloring of the line graph.

use crate::graph::Graph;
use crate::ids::{Color, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A total assignment of colors to nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexColoring {
    colors: Vec<Color>,
}

impl VertexColoring {
    /// Creates a vertex coloring from an explicit color vector (one entry per node).
    pub fn from_vec(colors: Vec<Color>) -> Self {
        VertexColoring { colors }
    }

    /// Creates the all-zero coloring on `n` nodes.
    pub fn uniform(n: usize) -> Self {
        VertexColoring { colors: vec![0; n] }
    }

    /// Number of nodes colored.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of node `v`.
    #[inline]
    pub fn color(&self, v: NodeId) -> Color {
        self.colors[v.index()]
    }

    /// Sets the color of node `v`.
    #[inline]
    pub fn set(&mut self, v: NodeId, c: Color) {
        self.colors[v.index()] = c;
    }

    /// The underlying color vector.
    pub fn as_slice(&self) -> &[Color] {
        &self.colors
    }

    /// Number of distinct colors used.
    pub fn colors_used(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.colors.iter().for_each(|c| {
            seen.insert(*c);
        });
        seen.len()
    }

    /// The largest color value used plus one (the size of the smallest
    /// zero-based color space containing the coloring), 0 if empty.
    pub fn palette_size(&self) -> usize {
        self.colors.iter().copied().max().map_or(0, |c| c + 1)
    }

    /// Returns `true` if no edge of `graph` is monochromatic.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        graph.edges().all(|e| {
            let (u, v) = graph.endpoints(e);
            self.color(u) != self.color(v)
        })
    }

    /// The *defect* of node `v`: the number of neighbors sharing `v`'s color.
    pub fn defect(&self, graph: &Graph, v: NodeId) -> usize {
        let cv = self.color(v);
        graph
            .neighbors(v)
            .iter()
            .filter(|nb| self.color(nb.node) == cv)
            .count()
    }

    /// The maximum defect over all nodes (0 for an edgeless graph).
    pub fn max_defect(&self, graph: &Graph) -> usize {
        graph
            .nodes()
            .map(|v| self.defect(graph, v))
            .max()
            .unwrap_or(0)
    }
}

/// A *partial* assignment of colors to edges.
///
/// Every algorithm in the reproduction colors edges in stages, so the natural
/// representation is `Option<Color>` per edge; [`EdgeColoring::is_complete`]
/// distinguishes finished colorings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeColoring {
    colors: Vec<Option<Color>>,
}

impl EdgeColoring {
    /// Creates an empty (entirely uncolored) edge coloring for `m` edges.
    pub fn empty(m: usize) -> Self {
        EdgeColoring {
            colors: vec![None; m],
        }
    }

    /// Creates an edge coloring from an explicit vector.
    pub fn from_vec(colors: Vec<Option<Color>>) -> Self {
        EdgeColoring { colors }
    }

    /// Number of edges (colored or not).
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of edge `e`, if assigned.
    #[inline]
    pub fn color(&self, e: EdgeId) -> Option<Color> {
        self.colors[e.index()]
    }

    /// Returns `true` if edge `e` has a color.
    #[inline]
    pub fn is_colored(&self, e: EdgeId) -> bool {
        self.colors[e.index()].is_some()
    }

    /// Assigns color `c` to edge `e`.
    #[inline]
    pub fn set(&mut self, e: EdgeId, c: Color) {
        self.colors[e.index()] = Some(c);
    }

    /// Removes the color of edge `e`.
    #[inline]
    pub fn unset(&mut self, e: EdgeId) {
        self.colors[e.index()] = None;
    }

    /// Number of edges that have a color.
    pub fn colored_count(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// Returns `true` if every edge has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(|c| c.is_some())
    }

    /// Number of distinct colors used by colored edges.
    pub fn colors_used(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.colors.iter().flatten().for_each(|c| {
            seen.insert(*c);
        });
        seen.len()
    }

    /// The largest color value used plus one, 0 if nothing is colored.
    pub fn palette_size(&self) -> usize {
        self.colors
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |c| c + 1)
    }

    /// Returns `true` if no two *colored* adjacent edges share a color.
    ///
    /// Uncolored edges never create conflicts, so a partial coloring can be
    /// proper; combine with [`EdgeColoring::is_complete`] for the full check.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        // Check around each node: all colored incident edges must have
        // pairwise distinct colors.
        for v in graph.nodes() {
            let mut seen = std::collections::HashSet::new();
            for nb in graph.neighbors(v) {
                if let Some(c) = self.color(nb.edge) {
                    if !seen.insert(c) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The defect of edge `e`: the number of adjacent edges (in the line
    /// graph) carrying the same color as `e`. Returns 0 for uncolored edges.
    pub fn defect(&self, graph: &Graph, e: EdgeId) -> usize {
        match self.color(e) {
            None => 0,
            Some(c) => graph
                .adjacent_edges(e)
                .into_iter()
                .filter(|&f| self.color(f) == Some(c))
                .count(),
        }
    }

    /// The maximum edge defect over all edges.
    pub fn max_defect(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .map(|e| self.defect(graph, e))
            .max()
            .unwrap_or(0)
    }

    /// The set of colors used by colored edges adjacent to `e`.
    pub fn colors_around(&self, graph: &Graph, e: EdgeId) -> std::collections::HashSet<Color> {
        graph
            .adjacent_edges(e)
            .into_iter()
            .filter_map(|f| self.color(f))
            .collect()
    }

    /// The number of *uncolored* edges adjacent to `e` (its uncolored degree).
    pub fn uncolored_degree(&self, graph: &Graph, e: EdgeId) -> usize {
        graph
            .adjacent_edges(e)
            .into_iter()
            .filter(|&f| !self.is_colored(f))
            .count()
    }

    /// Merges another partial coloring into this one via an edge-id mapping:
    /// color of edge `i` in `other` is written to edge `map[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than `other` or if a mapped edge already has
    /// a different color (the recursions must color disjoint edge sets).
    pub fn merge_mapped(&mut self, other: &EdgeColoring, map: &[EdgeId]) {
        assert!(
            map.len() >= other.len(),
            "edge map shorter than sub-coloring"
        );
        for (i, &target) in map.iter().enumerate().take(other.len()) {
            if let Some(c) = other.colors[i] {
                match self.colors[target.index()] {
                    None => self.colors[target.index()] = Some(c),
                    Some(existing) => {
                        assert_eq!(existing, c, "conflicting colors merged for {target}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn vertex_coloring_proper_and_defect() {
        let g = triangle();
        let c = VertexColoring::from_vec(vec![0, 1, 2]);
        assert!(c.is_proper(&g));
        assert_eq!(c.max_defect(&g), 0);
        assert_eq!(c.colors_used(), 3);
        assert_eq!(c.palette_size(), 3);

        let mono = VertexColoring::uniform(3);
        assert!(!mono.is_proper(&g));
        assert_eq!(mono.max_defect(&g), 2);
        assert_eq!(mono.defect(&g, NodeId::new(0)), 2);
    }

    #[test]
    fn vertex_coloring_set_and_get() {
        let mut c = VertexColoring::uniform(2);
        c.set(NodeId::new(1), 5);
        assert_eq!(c.color(NodeId::new(1)), 5);
        assert_eq!(c.as_slice(), &[0, 5]);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn edge_coloring_partial_properness() {
        let g = triangle();
        let mut c = EdgeColoring::empty(g.m());
        assert!(c.is_proper(&g));
        assert!(!c.is_complete());
        c.set(EdgeId::new(0), 0);
        c.set(EdgeId::new(1), 1);
        assert!(c.is_proper(&g));
        c.set(EdgeId::new(2), 1); // edge (0,2) conflicts with edge (1,2)
        assert!(!c.is_proper(&g));
        assert_eq!(c.defect(&g, EdgeId::new(2)), 1);
        assert_eq!(c.max_defect(&g), 1);
    }

    #[test]
    fn edge_coloring_counts() {
        let g = triangle();
        let mut c = EdgeColoring::empty(g.m());
        c.set(EdgeId::new(0), 3);
        c.set(EdgeId::new(1), 4);
        assert_eq!(c.colored_count(), 2);
        assert_eq!(c.colors_used(), 2);
        assert_eq!(c.palette_size(), 5);
        c.unset(EdgeId::new(1));
        assert_eq!(c.colored_count(), 1);
        assert!(!c.is_complete());
    }

    #[test]
    fn uncolored_degree_and_colors_around() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut c = EdgeColoring::empty(g.m());
        let mid = EdgeId::new(1);
        assert_eq!(c.uncolored_degree(&g, mid), 2);
        c.set(EdgeId::new(0), 7);
        assert_eq!(c.uncolored_degree(&g, mid), 1);
        let around = c.colors_around(&g, mid);
        assert!(around.contains(&7));
        assert_eq!(around.len(), 1);
    }

    #[test]
    fn merge_mapped_copies_colors() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (sub, map) = g.edge_subgraph(|e| e.index() != 1);
        let mut sub_coloring = EdgeColoring::empty(sub.m());
        sub_coloring.set(EdgeId::new(0), 9);
        sub_coloring.set(EdgeId::new(1), 2);
        let mut full = EdgeColoring::empty(g.m());
        full.merge_mapped(&sub_coloring, &map);
        assert_eq!(full.color(EdgeId::new(0)), Some(9));
        assert_eq!(full.color(EdgeId::new(1)), None);
        assert_eq!(full.color(EdgeId::new(2)), Some(2));
    }

    #[test]
    #[should_panic(expected = "conflicting colors")]
    fn merge_mapped_detects_conflicts() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let (sub, map) = g.edge_subgraph(|_| true);
        let mut sub_coloring = EdgeColoring::empty(sub.m());
        sub_coloring.set(EdgeId::new(0), 1);
        let mut full = EdgeColoring::empty(g.m());
        full.set(EdgeId::new(0), 2);
        full.merge_mapped(&sub_coloring, &map);
    }

    #[test]
    fn empty_collections() {
        let c = EdgeColoring::empty(0);
        assert!(c.is_empty());
        assert!(c.is_complete());
        assert_eq!(c.palette_size(), 0);
        let vc = VertexColoring::from_vec(vec![]);
        assert!(vc.is_empty());
        assert_eq!(vc.colors_used(), 0);
    }
}
