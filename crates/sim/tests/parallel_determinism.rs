//! The determinism battery for the parallel round-execution engine.
//!
//! The engine's contract is sharp: for any graph, seed and model,
//! `Parallel { threads }` must produce results **bit-identical** to
//! `Sequential` — same [`Mailboxes`], same [`Metrics`], same program outputs,
//! same final colorings — at every thread count. These property tests sweep
//! random graphs/seeds/models over thread counts {2, 3, 8} and compare
//! against the sequential reference at every layer of the stack:
//!
//! 1. `Network::exchange_sync` / `Network::broadcast` (mailboxes + metrics),
//! 2. `run_program_with` (outputs + metrics),
//! 3. the full coloring algorithms `color_edges_local` and `color_congest`
//!    (colorings + metrics).

use distgraph::{generators, EdgeId, Graph, NodeId};
use distsim::{
    run_program, run_program_with, ExecutionPolicy, IdAssignment, Incoming, Model, Network,
    NodeCtx, NodeProgram, Step,
};
use edgecolor::{color_congest, color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};
use proptest::prelude::*;

const THREAD_MATRIX: [usize; 3] = [2, 3, 8];

/// Random simple graph strategy: node count plus a sanitized edge list.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..32).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(96)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

fn arb_model() -> impl Strategy<Value = Model> {
    (0u64..3).prop_map(|pick| match pick {
        0 => Model::Local,
        1 => Model::Congest { bandwidth_bits: 8 },
        _ => Model::Congest { bandwidth_bits: 64 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_mailboxes_are_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        let ids = IdAssignment::scattered(g.n(), seed);
        let mut seq_net = Network::new(&g, model);
        let seq_mail = seq_net.broadcast(|v| ids.id(v) * 3 + v.index() as u64);
        for threads in THREAD_MATRIX {
            let mut par_net =
                Network::with_policy(&g, model, ExecutionPolicy::parallel(threads));
            let par_mail = par_net.broadcast(|v| ids.id(v) * 3 + v.index() as u64);
            prop_assert_eq!(&seq_mail, &par_mail);
            prop_assert_eq!(seq_net.metrics(), par_net.metrics());
            prop_assert_eq!(par_mail.total(), seq_mail.total());
        }
    }

    #[test]
    fn exchange_sync_is_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        // A send pattern with per-edge payload sizes and skipped edges, so
        // message counts, bit totals and congest violations all vary.
        let send = |v: NodeId| -> Vec<(EdgeId, Vec<u64>)> {
            g.neighbors(v)
                .iter()
                .filter(|nb| !(v.index() * 7 + nb.edge.index() + seed as usize).is_multiple_of(4))
                .map(|nb| {
                    let len = (nb.edge.index() + v.index()) % 3 + 1;
                    (nb.edge, vec![seed.wrapping_mul(v.index() as u64 + 1); len])
                })
                .collect()
        };
        let mut seq_net = Network::new(&g, model);
        let seq_mail = seq_net.exchange_sync(send);
        for threads in THREAD_MATRIX {
            let mut par_net =
                Network::with_policy(&g, model, ExecutionPolicy::parallel(threads));
            let par_mail = par_net.exchange_sync(send);
            prop_assert_eq!(&seq_mail, &par_mail);
            prop_assert_eq!(seq_net.metrics(), par_net.metrics());
        }
    }
}

/// Flooding with a per-round halting schedule: nodes halt at different
/// rounds, which stresses the halted-node bookkeeping of the parallel path.
struct StaggeredFlood {
    best: u64,
    budget: u32,
}

impl NodeProgram for StaggeredFlood {
    type Msg = u64;
    type Output = (u64, u32);

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        self.best = ctx.id;
        ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, (u64, u32)> {
        for m in inbox {
            self.best = self.best.max(m.msg);
        }
        if self.budget == 0 {
            return Step::Halt((self.best, ctx.degree as u32));
        }
        self.budget -= 1;
        Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn run_program_outputs_and_metrics_are_bit_identical((g, model, seed) in
        (arb_graph(), arb_model(), 0u64..1000))
    {
        let ids = IdAssignment::scattered(g.n(), seed);
        let budget_of = |v: NodeId| (v.index() as u32 + seed as u32) % 5;
        let reference = run_program(&g, &ids, model, 16, |v| StaggeredFlood {
            best: 0,
            budget: budget_of(v),
        });
        for threads in THREAD_MATRIX {
            let run = run_program_with(
                &g,
                &ids,
                model,
                ExecutionPolicy::parallel(threads),
                16,
                |v| StaggeredFlood {
                    best: 0,
                    budget: budget_of(v),
                },
            );
            prop_assert_eq!(&reference.outputs, &run.outputs);
            prop_assert_eq!(reference.metrics, run.metrics);
        }
    }
}

proptest! {
    // The full algorithms are expensive; fewer cases still cover a healthy
    // spread of graphs and seeds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn color_edges_local_is_policy_invariant((g, seed) in (arb_graph(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let params = ColoringParams::new(0.5);
        let reference = color_edges_local(&g, &ids, &params).expect("valid instance");
        if g.m() > 0 {
            check_proper_edge_coloring(&g, &reference.coloring).assert_ok();
            check_complete(&g, &reference.coloring).assert_ok();
        }
        for threads in THREAD_MATRIX {
            let par_params = params.with_policy(ExecutionPolicy::parallel(threads));
            let outcome = color_edges_local(&g, &ids, &par_params).expect("valid instance");
            prop_assert_eq!(&reference.coloring, &outcome.coloring);
            prop_assert_eq!(reference.metrics, outcome.metrics);
            prop_assert_eq!(reference.colors_used, outcome.colors_used);
            prop_assert_eq!(reference.outer_iterations, outcome.outer_iterations);
            prop_assert_eq!(reference.solver_calls, outcome.solver_calls);
        }
    }

    #[test]
    fn color_congest_is_policy_invariant((g, seed) in (arb_graph(), 0u64..1000)) {
        let ids = IdAssignment::scattered(g.n(), seed);
        let params = ColoringParams::new(0.5);
        let reference = color_congest(&g, &ids, &params);
        if g.m() > 0 {
            check_proper_edge_coloring(&g, &reference.coloring).assert_ok();
            check_complete(&g, &reference.coloring).assert_ok();
        }
        for threads in THREAD_MATRIX {
            let par_params = params.with_policy(ExecutionPolicy::parallel(threads));
            let outcome = color_congest(&g, &ids, &par_params);
            prop_assert_eq!(&reference.coloring, &outcome.coloring);
            prop_assert_eq!(reference.metrics, outcome.metrics);
            prop_assert_eq!(reference.colors_used, outcome.colors_used);
            prop_assert_eq!(reference.levels, outcome.levels);
        }
    }
}

/// Non-property check on a denser, structured instance: the bit-identity
/// holds on a graph large enough for the coloring machinery's outer loop to
/// engage.
#[test]
fn structured_instances_are_policy_invariant() {
    let bg = generators::regular_bipartite(24, 10, 3).expect("feasible");
    let g = bg.graph().clone();
    let ids = IdAssignment::scattered(g.n(), 9);
    let params = ColoringParams::new(0.5);
    let local_ref = color_edges_local(&g, &ids, &params).expect("valid instance");
    let congest_ref = color_congest(&g, &ids, &params);
    for threads in THREAD_MATRIX {
        let par = params.with_policy(ExecutionPolicy::parallel(threads));
        let local = color_edges_local(&g, &ids, &par).expect("valid instance");
        assert_eq!(local_ref.coloring, local.coloring, "{threads} threads");
        assert_eq!(local_ref.metrics, local.metrics, "{threads} threads");
        let congest = color_congest(&g, &ids, &par);
        assert_eq!(congest_ref.coloring, congest.coloring, "{threads} threads");
        assert_eq!(congest_ref.metrics, congest.metrics, "{threads} threads");
    }
}
