# Verification entry points for the edge-coloring reproduction workspace.

.PHONY: verify build test clippy fmt bench-check bench bench-smoke

# The full gate: tier-1 (release build + tests) plus lints, formatting,
# and bench compilation.
verify: build test clippy fmt bench-check

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --check

bench-check:
	cargo bench --no-run

# The measured baseline: quick E1–E11 sweeps plus the full-size SCALE
# experiment (million-edge graphs at 1/2/4/8 threads) and the DYN dynamic
# recoloring experiment (million-edge update streams), serialized to
# BENCH_1.json at the repo root (schema: README.md "Benchmark JSON schema").
bench:
	cargo run --release -p edgecolor-bench --bin experiments -- quick scale dyn --emit-json BENCH_1.json

# CI-sized variant: tiny sweeps and down-scaled SCALE/DYN graphs.
bench-smoke:
	cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn --emit-json /tmp/bench.json
