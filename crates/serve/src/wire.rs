//! The hand-rolled, length-prefixed wire protocol (v2, with v1 fallback).
//!
//! A message on the wire is one *frame*:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! with `1 ≤ len ≤` [`MAX_FRAME_LEN`]. A *message payload* is a **u8
//! opcode** plus a little-endian body (floats as `f64::to_bits`, strings
//! and vectors as a `u32` count followed by the elements). Requests use
//! opcodes `0x01..=0x10`, responses `0x81..=0x90`.
//!
//! **Protocol v2** wraps message payloads in a routing header. A
//! connection opens v2 by sending [`Request::Hello`] as its first frame;
//! the daemon answers [`Response::Welcome`] with the served-graph catalog,
//! and every subsequent frame carries the header:
//!
//! ```text
//! v2 request  payload: request_id u64 | graph_id u32 | opcode + body
//! v2 response payload: request_id u64 |               opcode + body
//! ```
//!
//! `request_id` is client-chosen and echoed verbatim on the response, so
//! a pipelined connection can match answers that complete out of order
//! across graphs. A connection whose first frame is *not* a `Hello` is
//! served **v1 semantics**: no headers, strict request-reply ordering,
//! every request routed to the default graph (id 0) — the PR-9 protocol,
//! which the unchanged v1 fuzz corpus still exercises.
//!
//! [`Request::decode`] / [`Response::decode`] and the v2 header codecs are
//! pure functions over a payload slice — the protocol fuzz battery drives
//! them with arbitrary bytes and they must never panic, only return
//! [`ProtocolError`]. Every declared count is checked against the bytes
//! actually remaining *before* any allocation, so a hostile length prefix
//! cannot balloon memory, and `Swap` paths are validated at decode time
//! (length cap, no embedded NUL) so hostile paths never reach the
//! filesystem layer.

use crate::error::{ProtocolError, WireError};
use crate::hist::{LatencyHistogram, HIST_BUCKETS};
use std::io::{Read, Write};

/// Hard cap on a frame payload (16 MiB) — comfortably above the largest
/// legitimate message (a multi-thousand-op batch is ~100 KiB) and small
/// enough that a hostile length prefix cannot exhaust memory.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// The protocol version this build speaks in a [`Request::Hello`] /
/// [`Response::Welcome`] handshake. Version 1 is the implicit
/// handshake-less protocol and has no wire representation.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on a `Swap` path, bytes. Enforced at decode time with a typed
/// [`ProtocolError::PathTooLong`] — longer than any legitimate filesystem
/// path and far below anything that could stress an allocator.
pub const MAX_SWAP_PATH: usize = 4096;

/// Size of the v2 request header (`request_id: u64` + `graph_id: u32`).
pub const V2_REQUEST_HEADER: usize = 12;

/// Size of the v2 response header (`request_id: u64`).
pub const V2_RESPONSE_HEADER: usize = 8;

/// Why a submission was turned away. Carried by [`Response::Rejected`];
/// every code mirrors one admission-control rule documented in
/// `docs/SERVE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The bounded pending queue is full — back off and retry.
    QueueFull = 0,
    /// A delete names a stable id that is not live (or is already pending
    /// deletion).
    UnknownEdge = 1,
    /// An insert names an endpoint pair that is already live (and not
    /// pending deletion) or already pending insertion.
    DuplicateEdge = 2,
    /// An insert endpoint is `≥ n`.
    NodeOutOfRange = 3,
    /// An insert pairs a node with itself.
    SelfLoop = 4,
    /// A snapshot hot-swap is in progress; mutations are quiesced.
    SwapInProgress = 5,
    /// The frame's `graph_id` names no served graph (v2 routing).
    UnknownGraph = 6,
}

impl RejectCode {
    fn from_tag(tag: u8) -> Result<Self, ProtocolError> {
        Ok(match tag {
            0 => RejectCode::QueueFull,
            1 => RejectCode::UnknownEdge,
            2 => RejectCode::DuplicateEdge,
            3 => RejectCode::NodeOutOfRange,
            4 => RejectCode::SelfLoop,
            5 => RejectCode::SwapInProgress,
            6 => RejectCode::UnknownGraph,
            t => {
                return Err(ProtocolError::UnknownTag {
                    field: "reject code",
                    tag: t,
                })
            }
        })
    }
}

/// What a color lookup found, relative to the answering epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The stable id is not live in the current epoch.
    Unknown,
    /// The edge is live and colored.
    Colored {
        /// Its color (`< palette`).
        color: u64,
        /// One endpoint (internal node id).
        u: u64,
        /// The other endpoint.
        v: u64,
    },
    /// The edge is live but not yet colored (its batch has been applied but
    /// the repair that colors it has not published — never observable
    /// through the server, which publishes apply+repair atomically; kept so
    /// the wire format does not rule it out).
    Uncolored {
        /// One endpoint (internal node id).
        u: u64,
        /// The other endpoint.
        v: u64,
    },
}

/// One served graph in the [`Response::Welcome`] catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// The routing id v2 frames name in their header.
    pub id: u32,
    /// Human-readable tenant name (snapshot stem or boot label).
    pub name: String,
    /// Nodes at answer time.
    pub n: u64,
    /// Edges at answer time.
    pub m: u64,
}

/// Server-side counters and latency distributions for **one served
/// graph**, snapshotted at answer time.
///
/// All counter fields are totals since daemon start. The latency fields
/// are full log-scale [`LatencyHistogram`]s (per-tick repair wall time and
/// per-lookup service time), shipped whole so any quantile — p50 through
/// p99.9 — is derivable client-side; `protocol_errors` is connection-level
/// and therefore identical across every graph's report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsReport {
    /// Current snapshot epoch (bumped only by hot swaps).
    pub epoch: u64,
    /// Applied-batch version within the epoch (bumped every tick).
    pub version: u64,
    /// Nodes in the current graph.
    pub n: u64,
    /// Edges in the current graph.
    pub m: u64,
    /// Maximum degree of the current graph.
    pub max_degree: u64,
    /// Palette budget of the live recoloring session.
    pub palette: u64,
    /// Batches admitted but not yet applied.
    pub queue_depth: u64,
    /// Lookup requests served.
    pub lookups: u64,
    /// Lookups that found a live edge.
    pub lookup_hits: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions rejected (all codes).
    pub rejected: u64,
    /// Ticks that applied at least one batch.
    pub ticks: u64,
    /// Admitted batches coalesced into those ticks.
    pub coalesced_batches: u64,
    /// Edges (re)colored by repairs.
    pub repaired_edges: u64,
    /// Repairs that fell back to a full recolor.
    pub full_recolors: u64,
    /// Self-stabilization passes run after repairs.
    pub stabilizations: u64,
    /// Conflicts those passes found (0 on a healthy daemon).
    pub conflicts_found: u64,
    /// Snapshot hot-swaps that succeeded.
    pub swaps: u64,
    /// Snapshot hot-swaps rejected (unreadable/corrupt snapshot).
    pub swaps_rejected: u64,
    /// Malformed frames/payloads received.
    pub protocol_errors: u64,
    /// Per-tick repair wall-time distribution.
    pub repair: LatencyHistogram,
    /// Per-lookup service-time distribution.
    pub lookup: LatencyHistogram,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Color lookup by stable edge id (`0x01`).
    Lookup {
        /// The stable id to resolve.
        stable: u64,
    },
    /// Submit a mutation batch for admission (`0x02`). Deletes are stable
    /// ids; inserts are endpoint pairs.
    Submit {
        /// Stable ids to delete.
        delete: Vec<u64>,
        /// Endpoint pairs to insert.
        insert: Vec<(u32, u32)>,
    },
    /// Fetch the metrics snapshot (`0x03`).
    Metrics,
    /// Fetch palette/coloring introspection (`0x04`).
    Palette,
    /// Partition the current graph into `shards` shards and report the cut
    /// (`0x05`).
    ShardInfo {
        /// Requested shard count.
        shards: u32,
    },
    /// Hot-swap the served snapshot to the file at `path` (`0x06`).
    Swap {
        /// Path of the snapshot file, UTF-8.
        path: String,
    },
    /// Apply every pending batch before answering (`0x07`).
    Flush,
    /// Stop the daemon (`0x08`).
    Shutdown,
    /// Open a v2 connection (`0x10`). Must be the **first** frame; any
    /// other first frame pins the connection to v1 semantics.
    Hello {
        /// Protocol version the client speaks ([`PROTOCOL_VERSION`]).
        version: u32,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Lookup answer, pinned to the epoch that served it (`0x81`).
    Color {
        /// Epoch the lookup ran against.
        epoch: u64,
        /// Version within that epoch.
        version: u64,
        /// What the lookup found.
        outcome: LookupOutcome,
    },
    /// The batch was admitted (`0x82`).
    Submitted {
        /// Admission ticket (1-based, dense per daemon lifetime).
        ticket: u64,
        /// Queue depth after admission.
        queued: u32,
    },
    /// The batch was turned away (`0x83`).
    Rejected {
        /// Which admission rule fired.
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Metrics snapshot (`0x84`).
    Metrics(Box<MetricsReport>),
    /// Palette introspection (`0x85`).
    Palette {
        /// Current epoch.
        epoch: u64,
        /// Palette budget `P`.
        palette: u64,
        /// Current maximum degree Δ.
        max_degree: u64,
        /// Distinct colors actually used.
        colors_used: u64,
    },
    /// Shard introspection (`0x86`).
    Shards {
        /// Shard count the partition was built with.
        shards: u32,
        /// Edges crossing shard boundaries.
        cut_edges: u64,
        /// `cut_edges / m`.
        cut_fraction: f64,
        /// `max shard nodes / (n / shards)`.
        balance_factor: f64,
    },
    /// Hot swap succeeded (`0x87`).
    Swapped {
        /// The new epoch.
        epoch: u64,
        /// Nodes in the new graph.
        n: u64,
        /// Edges in the new graph.
        m: u64,
    },
    /// Hot swap rejected; the old snapshot is still being served (`0x88`).
    SwapRejected {
        /// Why the snapshot was refused.
        detail: String,
    },
    /// All pending batches are applied (`0x89`).
    Flushed {
        /// Current epoch.
        epoch: u64,
        /// Version after the flush.
        version: u64,
        /// Ticks run since daemon start.
        ticks: u64,
    },
    /// The daemon acknowledges shutdown (`0x8A`).
    ShuttingDown,
    /// An internal failure while handling a well-formed request (`0x8B`).
    ServerError {
        /// Human-readable detail.
        detail: String,
    },
    /// The request payload was malformed; echoes the decode error (`0x8C`).
    ProtocolRejected {
        /// Display form of the [`ProtocolError`].
        detail: String,
    },
    /// Handshake answer to [`Request::Hello`] (`0x90`).
    Welcome {
        /// Protocol version the daemon will speak on this connection.
        version: u32,
        /// Per-connection in-flight request cap the daemon enforces.
        max_inflight: u32,
        /// The served-graph catalog, in `graph_id` order.
        graphs: Vec<GraphInfo>,
    },
}

// ---------------------------------------------------------------------------
// payload reader/writer
// ---------------------------------------------------------------------------

struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < len {
            return Err(ProtocolError::Truncated {
                expected: len,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` element count and proves `count * elem_size` bytes are
    /// actually present before the caller allocates anything.
    fn count(&mut self, elem_size: usize) -> Result<usize, ProtocolError> {
        let declared = self.u32()? as usize;
        let budget = self.remaining() / elem_size.max(1);
        if declared > budget {
            return Err(ProtocolError::CountTooLarge { declared, budget });
        }
        Ok(declared)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    /// A `Swap` path: a string with the filesystem-hostile shapes rejected
    /// at decode time, before the daemon ever forms a `Path` from it.
    fn swap_path(&mut self) -> Result<String, ProtocolError> {
        let len = self.count(1)?;
        if len > MAX_SWAP_PATH {
            return Err(ProtocolError::PathTooLong {
                len,
                max: MAX_SWAP_PATH,
            });
        }
        let bytes = self.take(len)?;
        if bytes.contains(&0) {
            return Err(ProtocolError::NulInPath);
        }
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn hist(&mut self) -> Result<LatencyHistogram, ProtocolError> {
        let count = self.u64()?;
        let sum_us = self.u64()?;
        let max_us = self.u64()?;
        let mut buckets = [0u64; HIST_BUCKETS];
        for b in buckets.iter_mut() {
            *b = self.u64()?;
        }
        Ok(LatencyHistogram::from_parts(count, sum_us, max_us, buckets))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(ProtocolError::TrailingBytes { extra }),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_hist(out: &mut Vec<u8>, h: &LatencyHistogram) {
    put_u64(out, h.count());
    put_u64(out, h.sum_us());
    put_u64(out, h.max_us());
    for &b in h.buckets() {
        put_u64(out, b);
    }
}

// ---------------------------------------------------------------------------
// message codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Lookup { stable } => {
                out.push(0x01);
                put_u64(&mut out, *stable);
            }
            Request::Submit { delete, insert } => {
                out.push(0x02);
                put_u32(&mut out, delete.len() as u32);
                for d in delete {
                    put_u64(&mut out, *d);
                }
                put_u32(&mut out, insert.len() as u32);
                for (u, v) in insert {
                    put_u32(&mut out, *u);
                    put_u32(&mut out, *v);
                }
            }
            Request::Metrics => out.push(0x03),
            Request::Palette => out.push(0x04),
            Request::ShardInfo { shards } => {
                out.push(0x05);
                put_u32(&mut out, *shards);
            }
            Request::Swap { path } => {
                out.push(0x06);
                put_string(&mut out, path);
            }
            Request::Flush => out.push(0x07),
            Request::Shutdown => out.push(0x08),
            Request::Hello { version } => {
                out.push(0x10);
                put_u32(&mut out, *version);
            }
        }
        out
    }

    /// Decodes a frame payload. Total (never panics) on arbitrary bytes.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] describing the first malformation encountered.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = PayloadReader::new(payload);
        let op = match r.u8() {
            Ok(op) => op,
            Err(_) => return Err(ProtocolError::EmptyFrame),
        };
        let req = match op {
            0x01 => Request::Lookup { stable: r.u64()? },
            0x02 => {
                let nd = r.count(8)?;
                let mut delete = Vec::with_capacity(nd);
                for _ in 0..nd {
                    delete.push(r.u64()?);
                }
                let ni = r.count(8)?;
                let mut insert = Vec::with_capacity(ni);
                for _ in 0..ni {
                    let u = r.u32()?;
                    let v = r.u32()?;
                    insert.push((u, v));
                }
                Request::Submit { delete, insert }
            }
            0x03 => Request::Metrics,
            0x04 => Request::Palette,
            0x05 => Request::ShardInfo { shards: r.u32()? },
            0x06 => Request::Swap {
                path: r.swap_path()?,
            },
            0x07 => Request::Flush,
            0x08 => Request::Shutdown,
            0x10 => Request::Hello { version: r.u32()? },
            op => return Err(ProtocolError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Color {
                epoch,
                version,
                outcome,
            } => {
                out.push(0x81);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *version);
                match outcome {
                    LookupOutcome::Unknown => out.push(0),
                    LookupOutcome::Colored { color, u, v } => {
                        out.push(1);
                        put_u64(&mut out, *color);
                        put_u64(&mut out, *u);
                        put_u64(&mut out, *v);
                    }
                    LookupOutcome::Uncolored { u, v } => {
                        out.push(2);
                        put_u64(&mut out, *u);
                        put_u64(&mut out, *v);
                    }
                }
            }
            Response::Submitted { ticket, queued } => {
                out.push(0x82);
                put_u64(&mut out, *ticket);
                put_u32(&mut out, *queued);
            }
            Response::Rejected { code, detail } => {
                out.push(0x83);
                out.push(*code as u8);
                put_string(&mut out, detail);
            }
            Response::Metrics(report) => {
                out.push(0x84);
                for v in [
                    report.epoch,
                    report.version,
                    report.n,
                    report.m,
                    report.max_degree,
                    report.palette,
                    report.queue_depth,
                    report.lookups,
                    report.lookup_hits,
                    report.accepted,
                    report.rejected,
                    report.ticks,
                    report.coalesced_batches,
                    report.repaired_edges,
                    report.full_recolors,
                    report.stabilizations,
                    report.conflicts_found,
                    report.swaps,
                    report.swaps_rejected,
                    report.protocol_errors,
                ] {
                    put_u64(&mut out, v);
                }
                put_hist(&mut out, &report.repair);
                put_hist(&mut out, &report.lookup);
            }
            Response::Palette {
                epoch,
                palette,
                max_degree,
                colors_used,
            } => {
                out.push(0x85);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *palette);
                put_u64(&mut out, *max_degree);
                put_u64(&mut out, *colors_used);
            }
            Response::Shards {
                shards,
                cut_edges,
                cut_fraction,
                balance_factor,
            } => {
                out.push(0x86);
                put_u32(&mut out, *shards);
                put_u64(&mut out, *cut_edges);
                put_f64(&mut out, *cut_fraction);
                put_f64(&mut out, *balance_factor);
            }
            Response::Swapped { epoch, n, m } => {
                out.push(0x87);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *n);
                put_u64(&mut out, *m);
            }
            Response::SwapRejected { detail } => {
                out.push(0x88);
                put_string(&mut out, detail);
            }
            Response::Flushed {
                epoch,
                version,
                ticks,
            } => {
                out.push(0x89);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *version);
                put_u64(&mut out, *ticks);
            }
            Response::ShuttingDown => out.push(0x8A),
            Response::ServerError { detail } => {
                out.push(0x8B);
                put_string(&mut out, detail);
            }
            Response::ProtocolRejected { detail } => {
                out.push(0x8C);
                put_string(&mut out, detail);
            }
            Response::Welcome {
                version,
                max_inflight,
                graphs,
            } => {
                out.push(0x90);
                put_u32(&mut out, *version);
                put_u32(&mut out, *max_inflight);
                put_u32(&mut out, graphs.len() as u32);
                for g in graphs {
                    put_u32(&mut out, g.id);
                    put_string(&mut out, &g.name);
                    put_u64(&mut out, g.n);
                    put_u64(&mut out, g.m);
                }
            }
        }
        out
    }

    /// Decodes a frame payload. Total (never panics) on arbitrary bytes.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] describing the first malformation encountered.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = PayloadReader::new(payload);
        let op = match r.u8() {
            Ok(op) => op,
            Err(_) => return Err(ProtocolError::EmptyFrame),
        };
        let resp = match op {
            0x81 => {
                let epoch = r.u64()?;
                let version = r.u64()?;
                let outcome = match r.u8()? {
                    0 => LookupOutcome::Unknown,
                    1 => LookupOutcome::Colored {
                        color: r.u64()?,
                        u: r.u64()?,
                        v: r.u64()?,
                    },
                    2 => LookupOutcome::Uncolored {
                        u: r.u64()?,
                        v: r.u64()?,
                    },
                    tag => {
                        return Err(ProtocolError::UnknownTag {
                            field: "lookup outcome",
                            tag,
                        })
                    }
                };
                Response::Color {
                    epoch,
                    version,
                    outcome,
                }
            }
            0x82 => Response::Submitted {
                ticket: r.u64()?,
                queued: r.u32()?,
            },
            0x83 => {
                let code = RejectCode::from_tag(r.u8()?)?;
                Response::Rejected {
                    code,
                    detail: r.string()?,
                }
            }
            0x84 => {
                let mut vals = [0u64; 20];
                for v in vals.iter_mut() {
                    *v = r.u64()?;
                }
                Response::Metrics(Box::new(MetricsReport {
                    epoch: vals[0],
                    version: vals[1],
                    n: vals[2],
                    m: vals[3],
                    max_degree: vals[4],
                    palette: vals[5],
                    queue_depth: vals[6],
                    lookups: vals[7],
                    lookup_hits: vals[8],
                    accepted: vals[9],
                    rejected: vals[10],
                    ticks: vals[11],
                    coalesced_batches: vals[12],
                    repaired_edges: vals[13],
                    full_recolors: vals[14],
                    stabilizations: vals[15],
                    conflicts_found: vals[16],
                    swaps: vals[17],
                    swaps_rejected: vals[18],
                    protocol_errors: vals[19],
                    repair: r.hist()?,
                    lookup: r.hist()?,
                }))
            }
            0x85 => Response::Palette {
                epoch: r.u64()?,
                palette: r.u64()?,
                max_degree: r.u64()?,
                colors_used: r.u64()?,
            },
            0x86 => Response::Shards {
                shards: r.u32()?,
                cut_edges: r.u64()?,
                cut_fraction: r.f64()?,
                balance_factor: r.f64()?,
            },
            0x87 => Response::Swapped {
                epoch: r.u64()?,
                n: r.u64()?,
                m: r.u64()?,
            },
            0x88 => Response::SwapRejected {
                detail: r.string()?,
            },
            0x89 => Response::Flushed {
                epoch: r.u64()?,
                version: r.u64()?,
                ticks: r.u64()?,
            },
            0x8A => Response::ShuttingDown,
            0x8B => Response::ServerError {
                detail: r.string()?,
            },
            0x8C => Response::ProtocolRejected {
                detail: r.string()?,
            },
            0x90 => {
                let version = r.u32()?;
                let max_inflight = r.u32()?;
                // Each catalog entry is ≥ 24 bytes (id + name count + n + m).
                let ng = r.count(24)?;
                let mut graphs = Vec::with_capacity(ng);
                for _ in 0..ng {
                    graphs.push(GraphInfo {
                        id: r.u32()?,
                        name: r.string()?,
                        n: r.u64()?,
                        m: r.u64()?,
                    });
                }
                Response::Welcome {
                    version,
                    max_inflight,
                    graphs,
                }
            }
            op => return Err(ProtocolError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// v2 routing headers
// ---------------------------------------------------------------------------

/// Encodes a v2 request payload: `request_id | graph_id | opcode + body`.
pub fn encode_v2_request(request_id: u64, graph_id: u32, req: &Request) -> Vec<u8> {
    let body = req.encode();
    let mut out = Vec::with_capacity(V2_REQUEST_HEADER + body.len());
    put_u64(&mut out, request_id);
    put_u32(&mut out, graph_id);
    out.extend_from_slice(&body);
    out
}

/// Splits a v2 request payload into `(request_id, graph_id, message bytes)`
/// without decoding the message — the daemon routes on the header first so
/// it can echo `request_id` even when the body turns out malformed.
///
/// # Errors
///
/// [`ProtocolError::Truncated`] when the payload is shorter than the header.
pub fn decode_v2_request_header(payload: &[u8]) -> Result<(u64, u32, &[u8]), ProtocolError> {
    if payload.len() < V2_REQUEST_HEADER {
        return Err(ProtocolError::Truncated {
            expected: V2_REQUEST_HEADER,
            have: payload.len(),
        });
    }
    let request_id = u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice"));
    let graph_id = u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice"));
    Ok((request_id, graph_id, &payload[V2_REQUEST_HEADER..]))
}

/// Decodes a full v2 request payload into `(request_id, graph_id, Request)`.
///
/// # Errors
///
/// A [`ProtocolError`] from the header split or the message decode.
pub fn decode_v2_request(payload: &[u8]) -> Result<(u64, u32, Request), ProtocolError> {
    let (request_id, graph_id, body) = decode_v2_request_header(payload)?;
    Ok((request_id, graph_id, Request::decode(body)?))
}

/// Encodes a v2 response payload: `request_id | opcode + body`.
pub fn encode_v2_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let body = resp.encode();
    let mut out = Vec::with_capacity(V2_RESPONSE_HEADER + body.len());
    put_u64(&mut out, request_id);
    out.extend_from_slice(&body);
    out
}

/// Decodes a v2 response payload into `(request_id, Response)`.
///
/// # Errors
///
/// [`ProtocolError::Truncated`] when shorter than the header, else whatever
/// the message decode reports.
pub fn decode_v2_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    if payload.len() < V2_RESPONSE_HEADER {
        return Err(ProtocolError::Truncated {
            expected: V2_RESPONSE_HEADER,
            have: payload.len(),
        });
    }
    let request_id = u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice"));
    let resp = Response::decode(&payload[V2_RESPONSE_HEADER..])?;
    Ok((request_id, resp))
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

/// Reads one frame payload. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF *inside* a frame is
/// [`ProtocolError::Truncated`].
///
/// # Errors
///
/// [`WireError::Io`] for transport failures (including read timeouts) and
/// [`WireError::Protocol`] for malformed framing.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    if !read_full(reader, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(ProtocolError::EmptyFrame.into());
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len }.into());
    }
    let mut payload = vec![0u8; len];
    if !read_full(reader, &mut payload)? {
        return Err(ProtocolError::Truncated {
            expected: len,
            have: 0,
        }
        .into());
    }
    Ok(Some(payload))
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`WireError::Protocol`] if the payload exceeds [`MAX_FRAME_LEN`] or is
/// empty, [`WireError::Io`] on transport failure.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.is_empty() {
        return Err(ProtocolError::EmptyFrame.into());
    }
    if payload.len() > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len: payload.len() }.into());
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Fills `buf` completely. `Ok(false)` means EOF before the first byte;
/// EOF after a partial read is [`ProtocolError::Truncated`].
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtocolError::Truncated {
                    expected: buf.len(),
                    have: filled,
                }
                .into());
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Lookup { stable: u64::MAX });
        round_trip_request(Request::Submit {
            delete: vec![0, 1, 99],
            insert: vec![(0, 7), (12, 3)],
        });
        round_trip_request(Request::Submit {
            delete: vec![],
            insert: vec![],
        });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Palette);
        round_trip_request(Request::ShardInfo { shards: 8 });
        round_trip_request(Request::Swap {
            path: "/tmp/snap.bin".into(),
        });
        round_trip_request(Request::Flush);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Hello {
            version: PROTOCOL_VERSION,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Color {
            epoch: 3,
            version: 77,
            outcome: LookupOutcome::Colored {
                color: 5,
                u: 1,
                v: 2,
            },
        });
        round_trip_response(Response::Color {
            epoch: 0,
            version: 0,
            outcome: LookupOutcome::Unknown,
        });
        round_trip_response(Response::Color {
            epoch: 1,
            version: 2,
            outcome: LookupOutcome::Uncolored { u: 4, v: 9 },
        });
        round_trip_response(Response::Submitted {
            ticket: 12,
            queued: 3,
        });
        round_trip_response(Response::Rejected {
            code: RejectCode::QueueFull,
            detail: "queue full".into(),
        });
        let mut repair = LatencyHistogram::new();
        repair.record_us(1500);
        repair.record_us(80_000);
        let mut lookup = LatencyHistogram::new();
        lookup.record_us(3);
        round_trip_response(Response::Metrics(Box::new(MetricsReport {
            epoch: 2,
            repair,
            lookup,
            ..MetricsReport::default()
        })));
        round_trip_response(Response::Palette {
            epoch: 1,
            palette: 7,
            max_degree: 4,
            colors_used: 6,
        });
        round_trip_response(Response::Shards {
            shards: 4,
            cut_edges: 120,
            cut_fraction: 0.06,
            balance_factor: 1.02,
        });
        round_trip_response(Response::Swapped {
            epoch: 2,
            n: 100,
            m: 200,
        });
        round_trip_response(Response::SwapRejected {
            detail: "bad magic".into(),
        });
        round_trip_response(Response::Flushed {
            epoch: 1,
            version: 9,
            ticks: 4,
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::ServerError {
            detail: "oops".into(),
        });
        round_trip_response(Response::ProtocolRejected {
            detail: "unknown opcode".into(),
        });
        round_trip_response(Response::Welcome {
            version: PROTOCOL_VERSION,
            max_inflight: 32,
            graphs: vec![
                GraphInfo {
                    id: 0,
                    name: "torus-30x30".into(),
                    n: 900,
                    m: 1800,
                },
                GraphInfo {
                    id: 1,
                    name: "snap".into(),
                    n: 10,
                    m: 9,
                },
            ],
        });
        round_trip_response(Response::Welcome {
            version: PROTOCOL_VERSION,
            max_inflight: 1,
            graphs: vec![],
        });
    }

    #[test]
    fn v2_headers_round_trip_and_reject_short_payloads() {
        let req = Request::Lookup { stable: 42 };
        let payload = encode_v2_request(u64::MAX, 7, &req);
        let (rid, gid, body) = decode_v2_request_header(&payload).unwrap();
        assert_eq!((rid, gid), (u64::MAX, 7));
        assert_eq!(Request::decode(body).unwrap(), req);
        assert_eq!(decode_v2_request(&payload).unwrap(), (u64::MAX, 7, req));

        let resp = Response::ShuttingDown;
        let payload = encode_v2_response(99, &resp);
        assert_eq!(decode_v2_response(&payload).unwrap(), (99, resp));

        // Payloads shorter than the headers are typed Truncated errors.
        assert!(matches!(
            decode_v2_request_header(&[0u8; 11]),
            Err(ProtocolError::Truncated {
                expected: V2_REQUEST_HEADER,
                ..
            })
        ));
        assert!(matches!(
            decode_v2_response(&[0u8; 7]),
            Err(ProtocolError::Truncated {
                expected: V2_RESPONSE_HEADER,
                ..
            })
        ));
        // A well-formed header over a garbage body still surfaces the id,
        // so the daemon can tag its ProtocolRejected answer.
        let mut evil = Vec::new();
        evil.extend_from_slice(&5u64.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.push(0xfe);
        let (rid, _gid, body) = decode_v2_request_header(&evil).unwrap();
        assert_eq!(rid, 5);
        assert_eq!(
            Request::decode(body),
            Err(ProtocolError::UnknownOpcode(0xfe))
        );
    }

    #[test]
    fn hostile_swap_paths_are_rejected_at_decode_time() {
        // Embedded NUL: classic truncation smuggling. Typed reject.
        let evil = Request::Swap {
            path: "/tmp/ok.bin\0/etc/shadow".into(),
        };
        assert_eq!(
            Request::decode(&evil.encode()),
            Err(ProtocolError::NulInPath)
        );

        // Over-long path: rejected by the protocol cap, not the filesystem.
        let long = Request::Swap {
            path: "x".repeat(MAX_SWAP_PATH + 1),
        };
        assert_eq!(
            Request::decode(&long.encode()),
            Err(ProtocolError::PathTooLong {
                len: MAX_SWAP_PATH + 1,
                max: MAX_SWAP_PATH,
            })
        );
        // Exactly at the cap is fine.
        let max = Request::Swap {
            path: "x".repeat(MAX_SWAP_PATH),
        };
        assert_eq!(Request::decode(&max.encode()).unwrap(), max);
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtocolError::EmptyFrame));
        assert_eq!(
            Request::decode(&[0xff]),
            Err(ProtocolError::UnknownOpcode(0xff))
        );
        // Truncated lookup body.
        assert!(matches!(
            Request::decode(&[0x01, 1, 2]),
            Err(ProtocolError::Truncated { .. })
        ));
        // Trailing garbage after a complete message.
        assert_eq!(
            Request::decode(&[0x03, 0x00]),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );
        // A count prefix that cannot fit in the remaining bytes is refused
        // before allocation.
        let mut huge = vec![0x02];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&huge),
            Err(ProtocolError::CountTooLarge { .. })
        ));
        // Invalid UTF-8 in a swap path.
        let mut bad = vec![0x06];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Request::decode(&bad), Err(ProtocolError::BadUtf8));
        // Unknown tags inside response bodies.
        let mut resp = vec![0x81];
        resp.extend_from_slice(&[0u8; 16]);
        resp.push(9);
        assert!(matches!(
            Response::decode(&resp),
            Err(ProtocolError::UnknownTag { .. })
        ));
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x03]).unwrap();
        write_frame(&mut buf, &[0x04]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(vec![0x03]));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(vec![0x04]));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        // Oversize and zero-length declarations are protocol errors.
        let mut oversize = Vec::new();
        oversize.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        let mut cursor = std::io::Cursor::new(oversize);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(ProtocolError::FrameTooLarge { .. }))
        ));
        let mut cursor = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(ProtocolError::EmptyFrame))
        ));
        // EOF inside a declared frame is Truncated, not a clean close.
        let mut partial = Vec::new();
        partial.extend_from_slice(&8u32.to_le_bytes());
        partial.extend_from_slice(&[1, 2, 3]);
        let mut cursor = std::io::Cursor::new(partial);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(ProtocolError::Truncated { .. }))
        ));
        assert!(matches!(
            write_frame(&mut Vec::new(), &[]),
            Err(WireError::Protocol(ProtocolError::EmptyFrame))
        ));
    }
}
